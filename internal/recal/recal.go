// Package recal closes the loop between the cost model and the live
// index: the paper's predictions (L-MCM, Eq. 15-18) are functions of
// the relative distance distribution F̂ and per-level tree statistics,
// both frozen at build time, while inserts, deletes, and workload shift
// move the true distribution out from under them. A Recalibrator keeps
// the predictions honest with three mechanisms:
//
//   - Incremental F̂ maintenance. Every Insert/Delete samples a handful
//     of distances between the written object and a reservoir-sampled
//     set of live objects, accumulating them into a live count vector.
//     The build-time histogram's counts are carried alongside with a
//     weight that decays by ×(1 − 2/n) per write, so after the index
//     has turned over, the live regime dominates. Histogram() blends
//     the two into a distribution the model can be refit from.
//
//   - Per-level multiplicative bias correction. The serving layer feeds
//     back each traced execution: the model's per-level prediction
//     (RangeLByLevel) joined against the per-level observed node reads
//     and distance computations from the internal/obs trace — the
//     residuals experiment's join, computed online over a sliding
//     window. CorrectRange/CorrectNN scale predictions by the windowed
//     observed/predicted ratio, so admission prices track what queries
//     actually spend even between model refits.
//
//   - Drift alarm. The windowed relative error of the predictions that
//     were actually served (after correction, if the caller corrects)
//     is compared against a configured band; each crossing from inside
//     to outside raises an alarm. Stats() exposes the error, the band
//     occupancy, and the alarm count for /v1/stats.
//
// A Recalibrator is safe for concurrent use; all methods take an
// internal mutex. It never touches the tree itself — callers own the
// write path and report writes here.
package recal

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"mcost/internal/core"
	"mcost/internal/histogram"
	"mcost/internal/metric"
	"mcost/internal/obs"
)

// Config tunes a Recalibrator. The zero value of each field selects the
// default noted on it.
type Config struct {
	// Window is the number of traced executions the bias/error window
	// holds (default 64). One batched dispatch is one entry, weighted by
	// its query count.
	Window int
	// Band is the relative-error band of the drift alarm (default 0.5):
	// the windowed |served − observed| / observed ratio is "in band"
	// while ≤ Band.
	Band float64
	// SampleK is the number of reservoir distances sampled per write
	// (default 24). Higher is a sharper live F̂ per write, at K distance
	// computations per Insert/Delete.
	SampleK int
	// Reservoir is the number of live objects kept for distance
	// sampling (default 512).
	Reservoir int
	// RefreshEvery marks the model stale every this many writes
	// (default 128): NeedRefresh flips true, the owner refits from
	// Histogram() and fresh tree stats, then calls MarkRefreshed.
	RefreshEvery int
	// Seed makes the reservoir and distance sampling deterministic.
	Seed int64
}

// Effective returns the config with defaults filled in — what New will
// actually run with (for display and tests).
func (c Config) Effective() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.Band <= 0 {
		c.Band = 0.5
	}
	if c.SampleK <= 0 {
		c.SampleK = 24
	}
	if c.Reservoir <= 0 {
		c.Reservoir = 512
	}
	if c.RefreshEvery <= 0 {
		c.RefreshEvery = 128
	}
	return c
}

// biasClamp bounds every learned multiplicative bias factor: a window
// dominated by a few tiny predictions must not blow admission prices up
// (or down) by orders of magnitude.
const biasMin, biasMax = 0.2, 5.0

// entry is one traced execution in the sliding window. All sums are
// over the entry's queries, so window ratios are query-weighted.
type entry struct {
	queries float64
	// rawNodes/rawDists are the uncorrected per-level predictions (nil
	// for NN executions, which have no per-level model breakdown).
	rawNodes, rawDists []float64
	rawTotN, rawTotD   float64
	// servedN/servedD are the predictions actually used for admission —
	// corrected, when the caller corrects.
	servedN, servedD float64
	// obsNodes/obsDists are the per-level observed costs from the trace.
	obsNodes, obsDists []float64
	obsTotN, obsTotD   float64
}

// Recalibrator is the live feedback controller for one index (or one
// shard). Construct with New.
type Recalibrator struct {
	cfg   Config
	space *metric.Space

	mu  sync.Mutex
	rng *rand.Rand

	// Live F̂ state.
	base       *histogram.Histogram // build-time histogram (shape + counts source)
	baseCounts []float64            // integer counts recovered from the build histogram
	baseScale  float64              // per-count multiplier aligning base mass with live mass
	baseDecay  float64              // remaining fraction of the build-time mass
	live       []int64              // sampled distance counts since build
	liveTotal  int64
	reservoir  []metric.Object
	seen       int64 // objects offered to the reservoir
	size       int   // current index size (tracked, for the decay rate)

	// Write bookkeeping.
	inserts, deletes int64
	sinceRefresh     int
	refreshRequested bool

	// Sliding window.
	window []entry
	next   int  // ring position
	filled bool // ring has wrapped

	// Alarm state.
	inBand bool
	alarms int64
}

// New returns a recalibrator for a space whose build-time distance
// distribution is base and whose index currently holds size objects.
// seedSample provides live objects to prime the distance-sampling
// reservoir (typically the build dataset); it may be short or empty, in
// which case the reservoir fills from subsequent inserts.
func New(cfg Config, base *histogram.Histogram, space *metric.Space, size int, seedSample []metric.Object) (*Recalibrator, error) {
	if base == nil {
		return nil, errors.New("recal: nil base histogram")
	}
	if space == nil {
		return nil, errors.New("recal: nil space")
	}
	if size <= 0 {
		return nil, fmt.Errorf("recal: index size %d, need > 0", size)
	}
	cfg = cfg.withDefaults()
	r := &Recalibrator{
		cfg:    cfg,
		space:  space,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		live:   make([]int64, base.Bins()),
		size:   size,
		inBand: true,
	}
	// Recover the build histogram's integer bin counts from its
	// cumulative fractions (the same arithmetic histogram.Merge uses).
	r.baseCounts = make([]float64, base.Bins())
	var prev int64
	for i := 0; i < base.Bins(); i++ {
		run := int64(math.Round(base.CumAt(i) * float64(base.N())))
		r.baseCounts[i] = float64(run - prev)
		prev = run
	}
	// Scale the base mass into the live currency — SampleK samples per
	// object — so "index doubled under writes" means "live mass caught
	// up with base mass" regardless of how many pairs estimation drew.
	mass := float64(cfg.SampleK) * float64(size)
	if n := float64(base.N()); n > 0 {
		r.baseScale = mass / n
	} else {
		r.baseScale = 1
	}
	r.baseDecay = 1
	// Prime the reservoir with a deterministic sample of the live set.
	cap := cfg.Reservoir
	if cap > len(seedSample) {
		cap = len(seedSample)
	}
	if cap > 0 {
		perm := r.rng.Perm(len(seedSample))
		r.reservoir = make([]metric.Object, 0, cfg.Reservoir)
		for _, i := range perm[:cap] {
			r.reservoir = append(r.reservoir, seedSample[i])
		}
	}
	r.seen = int64(len(r.reservoir))
	r.base = base
	return r, nil
}

// sampleInto draws SampleK reservoir distances to obj and applies delta
// (+1 insert, −1 delete, clamped at zero) to the hit bins. Caller holds
// r.mu.
func (r *Recalibrator) sampleInto(obj metric.Object, delta int64) {
	if len(r.reservoir) == 0 {
		return
	}
	for k := 0; k < r.cfg.SampleK; k++ {
		peer := r.reservoir[r.rng.Intn(len(r.reservoir))]
		d := r.space.Distance(obj, peer)
		i := r.binOf(d)
		if delta > 0 {
			r.live[i]++
			r.liveTotal++
		} else if r.live[i] > 0 {
			r.live[i]--
			r.liveTotal--
		}
	}
}

// binOf maps a distance to its histogram bin, mirroring the histogram
// package's right-closed continuous / ceil-minus-one discrete rule.
func (r *Recalibrator) binOf(v float64) int {
	bins := len(r.live)
	width := r.base.Bound() / float64(bins)
	if v <= 0 {
		return 0
	}
	i := int(v / width)
	if r.base.Discrete() {
		i = int(math.Ceil(v/width)) - 1
		if i < 0 {
			i = 0
		}
	} else if float64(i)*width == v && i > 0 {
		i--
	}
	if i >= bins {
		i = bins - 1
	}
	return i
}

// decayStep ages the build-time mass after one write. Caller holds r.mu.
func (r *Recalibrator) decayStep() {
	n := r.size
	if n < 8 {
		n = 8
	}
	r.baseDecay *= 1 - 2/float64(n)
	r.sinceRefresh++
	if r.sinceRefresh >= r.cfg.RefreshEvery {
		r.refreshRequested = true
	}
}

// ObserveInsert folds one inserted object into the live distribution
// and the sampling reservoir.
func (r *Recalibrator) ObserveInsert(obj metric.Object) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sampleInto(obj, +1)
	// Reservoir-sample the insert stream so the peer set stays a
	// uniform sample of everything ever offered.
	r.seen++
	if len(r.reservoir) < r.cfg.Reservoir {
		r.reservoir = append(r.reservoir, obj)
	} else if j := r.rng.Int63n(r.seen); int(j) < len(r.reservoir) {
		r.reservoir[j] = obj
	}
	r.size++
	r.inserts++
	r.decayStep()
}

// ObserveDelete folds one deleted object out of the live distribution.
// The reservoir is left untouched: it is a statistical sample, and the
// deleted object's residual presence is one draw among Reservoir.
func (r *Recalibrator) ObserveDelete(obj metric.Object) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sampleInto(obj, -1)
	if r.size > 1 {
		r.size--
	}
	r.deletes++
	r.decayStep()
}

// Histogram blends the decayed build-time counts with the live sampled
// counts into the current F̂ estimate.
func (r *Recalibrator) Histogram() (*histogram.Histogram, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	weights := make([]float64, len(r.live))
	w := r.baseScale * r.baseDecay
	for i := range weights {
		weights[i] = r.baseCounts[i]*w + float64(r.live[i])
	}
	return histogram.FromWeightedCounts(weights, r.base.Bound(), r.base.Discrete())
}

// NeedRefresh reports whether RefreshEvery writes have accumulated
// since the last MarkRefreshed — the owner's cue to refit the model
// from Histogram() and fresh tree statistics.
func (r *Recalibrator) NeedRefresh() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.refreshRequested
}

// MarkRefreshed acknowledges a model refit.
func (r *Recalibrator) MarkRefreshed() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.refreshRequested = false
	r.sinceRefresh = 0
}

// ObserveRange feeds back one traced range execution: rawPerLevel is
// the uncorrected per-query model prediction (RangeLByLevel), served
// the per-query prediction admission actually used, tr the merged trace
// of the execution. In batched serving the observed node cost is the
// amortized (shared-traversal) cost — deliberately so: that is the cost
// the server actually pays, the currency admission drains.
func (r *Recalibrator) ObserveRange(rawPerLevel []core.CostEstimate, served core.CostEstimate, tr *obs.Trace) {
	if tr == nil || tr.Queries == 0 {
		return
	}
	q := float64(tr.Queries)
	e := entry{queries: q, servedN: served.Nodes * q, servedD: served.Dists * q}
	e.rawNodes = make([]float64, len(rawPerLevel))
	e.rawDists = make([]float64, len(rawPerLevel))
	for i, c := range rawPerLevel {
		e.rawNodes[i] = c.Nodes * q
		e.rawDists[i] = c.Dists * q
		e.rawTotN += c.Nodes * q
		e.rawTotD += c.Dists * q
	}
	r.pushObserved(&e, tr)
}

// ObserveNN feeds back one traced k-NN execution. The NN model has no
// per-level breakdown, so NN observations train only the aggregate
// bias and the window error.
func (r *Recalibrator) ObserveNN(raw, served core.CostEstimate, tr *obs.Trace) {
	if tr == nil || tr.Queries == 0 {
		return
	}
	q := float64(tr.Queries)
	e := entry{
		queries: q,
		rawTotN: raw.Nodes * q, rawTotD: raw.Dists * q,
		servedN: served.Nodes * q, servedD: served.Dists * q,
	}
	r.pushObserved(&e, tr)
}

// pushObserved completes the entry from the trace, appends it to the
// ring, and updates the alarm.
func (r *Recalibrator) pushObserved(e *entry, tr *obs.Trace) {
	e.obsNodes = make([]float64, len(tr.Levels))
	e.obsDists = make([]float64, len(tr.Levels))
	for i := range tr.Levels {
		e.obsNodes[i] = float64(tr.Levels[i].Nodes)
		e.obsDists[i] = float64(tr.Levels[i].Dists)
		e.obsTotN += e.obsNodes[i]
		e.obsTotD += e.obsDists[i]
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.window) < r.cfg.Window {
		r.window = append(r.window, *e)
	} else {
		r.window[r.next] = *e
		r.next = (r.next + 1) % r.cfg.Window
		r.filled = true
	}
	err := r.windowErrorLocked()
	if err > r.cfg.Band {
		if r.inBand {
			r.alarms++
			r.inBand = false
		}
	} else {
		r.inBand = true
	}
}

// windowErrorLocked is the windowed relative error of the served
// predictions: max over the two cost dimensions of
// |Σserved − Σobserved| / Σobserved. Caller holds r.mu.
func (r *Recalibrator) windowErrorLocked() float64 {
	var sN, sD, oN, oD float64
	for i := range r.window {
		sN += r.window[i].servedN
		sD += r.window[i].servedD
		oN += r.window[i].obsTotN
		oD += r.window[i].obsTotD
	}
	eN := relErr(sN, oN)
	eD := relErr(sD, oD)
	if eN > eD {
		return eN
	}
	return eD
}

func relErr(pred, obs float64) float64 {
	if obs < 1 {
		obs = 1
	}
	return math.Abs(pred-obs) / obs
}

func clampBias(b float64) float64 {
	if b < biasMin {
		return biasMin
	}
	if b > biasMax {
		return biasMax
	}
	return b
}

// biasLocked returns the per-level multiplicative bias factors (nodes,
// dists) learned from the window, plus the aggregate factors. Levels
// with no predicted mass in the window fall back to the aggregate.
// Caller holds r.mu.
func (r *Recalibrator) biasLocked() (nodes, dists []float64, aggN, aggD float64) {
	var levels int
	var rawTotN, rawTotD, obsTotN, obsTotD float64
	for i := range r.window {
		if l := len(r.window[i].rawNodes); l > levels {
			levels = l
		}
		rawTotN += r.window[i].rawTotN
		rawTotD += r.window[i].rawTotD
		obsTotN += r.window[i].obsTotN
		obsTotD += r.window[i].obsTotD
	}
	aggN, aggD = 1, 1
	if rawTotN > 0 {
		aggN = clampBias(obsTotN / rawTotN)
	}
	if rawTotD > 0 {
		aggD = clampBias(obsTotD / rawTotD)
	}
	if levels == 0 {
		return nil, nil, aggN, aggD
	}
	predN := make([]float64, levels)
	predD := make([]float64, levels)
	obsN := make([]float64, levels)
	obsD := make([]float64, levels)
	for i := range r.window {
		e := &r.window[i]
		if e.rawNodes == nil {
			continue // NN entries train only the aggregate
		}
		for l := 0; l < len(e.rawNodes) && l < levels; l++ {
			predN[l] += e.rawNodes[l]
			predD[l] += e.rawDists[l]
		}
		for l := 0; l < len(e.obsNodes) && l < levels; l++ {
			obsN[l] += e.obsNodes[l]
			obsD[l] += e.obsDists[l]
		}
	}
	nodes = make([]float64, levels)
	dists = make([]float64, levels)
	for l := 0; l < levels; l++ {
		if predN[l] > 0 {
			nodes[l] = clampBias(obsN[l] / predN[l])
		} else {
			nodes[l] = aggN
		}
		if predD[l] > 0 {
			dists[l] = clampBias(obsD[l] / predD[l])
		} else {
			dists[l] = aggD
		}
	}
	return nodes, dists, aggN, aggD
}

// CorrectRange applies the per-level bias to an uncorrected per-level
// range prediction and returns the corrected total. With an empty
// window it degenerates to the plain sum.
func (r *Recalibrator) CorrectRange(rawPerLevel []core.CostEstimate) core.CostEstimate {
	r.mu.Lock()
	nodes, dists, aggN, aggD := r.biasLocked()
	r.mu.Unlock()
	var est core.CostEstimate
	for l, c := range rawPerLevel {
		bN, bD := aggN, aggD
		if l < len(nodes) {
			bN, bD = nodes[l], dists[l]
		}
		est.Nodes += c.Nodes * bN
		est.Dists += c.Dists * bD
	}
	return est
}

// CorrectTotal applies the aggregate bias to any whole-query
// prediction — the correction for models with no per-level breakdown
// (N-MCM, the NN integrals).
func (r *Recalibrator) CorrectTotal(raw core.CostEstimate) core.CostEstimate {
	r.mu.Lock()
	_, _, aggN, aggD := r.biasLocked()
	r.mu.Unlock()
	return core.CostEstimate{Nodes: raw.Nodes * aggN, Dists: raw.Dists * aggD}
}

// CorrectNN applies the aggregate bias to an NN prediction.
func (r *Recalibrator) CorrectNN(raw core.CostEstimate) core.CostEstimate {
	return r.CorrectTotal(raw)
}

// Stats is the observable state of a recalibrator, exposed on
// /v1/stats and by the drift experiments.
type Stats struct {
	Inserts, Deletes int64
	// BaseWeight is the remaining fraction of the build-time mass in
	// the blended F̂ (1 at build, →0 as the index turns over).
	BaseWeight float64
	// LiveSamples is the current live sampled-distance count.
	LiveSamples int64
	// ReservoirSize is the number of live objects held for sampling.
	ReservoirSize int
	// WindowError is the current windowed relative error of served
	// predictions (max over cost dimensions).
	WindowError float64
	// InBand reports WindowError <= Band.
	InBand bool
	// DriftAlarms counts in-band → out-of-band crossings.
	DriftAlarms int64
	// WindowQueries is the number of queries currently in the window.
	WindowQueries int64
	// BiasNodesPerLevel / BiasDistsPerLevel are the current learned
	// factors, root first (nil with an empty window).
	BiasNodesPerLevel []float64
	BiasDistsPerLevel []float64
	// Band echoes the configured alarm band.
	Band float64
}

// Stats snapshots the recalibrator.
func (r *Recalibrator) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	nodes, dists, _, _ := r.biasLocked()
	var q float64
	for i := range r.window {
		q += r.window[i].queries
	}
	return Stats{
		Inserts:           r.inserts,
		Deletes:           r.deletes,
		BaseWeight:        r.baseDecay,
		LiveSamples:       r.liveTotal,
		ReservoirSize:     len(r.reservoir),
		WindowError:       r.windowErrorLocked(),
		InBand:            r.windowErrorLocked() <= r.cfg.Band,
		DriftAlarms:       r.alarms,
		WindowQueries:     int64(q),
		BiasNodesPerLevel: nodes,
		BiasDistsPerLevel: dists,
		Band:              r.cfg.Band,
	}
}

// Band returns the configured alarm band.
func (r *Recalibrator) Band() float64 { return r.cfg.Band }
