package recal_test

import (
	"context"
	"math/rand"
	"testing"

	"mcost"
	"mcost/internal/dataset"
	"mcost/internal/metric"
	"mcost/internal/recal"
)

// The drift harness: two identical indexes over a uniform base, one
// with recalibration enabled, both doubled by a stream of inserts
// drawn from a shifted distribution while probe batches measure the
// windowed admission error — |priced − observed| / observed over the
// recent window, the exact quantity the serving layer's drift alarm
// watches. The pinned contract of this PR: with recalibration ON the
// error stays inside the band while the index doubles; with it OFF
// the frozen build-time model leaves the band.

const (
	driftBaseN  = 1600
	driftDim    = 6
	driftStages = 8
	driftProbes = 24
	driftRadius = 0.3
	// driftWindow is the number of recent probe executions the
	// harness's own admission-error window holds.
	driftWindow = 24
)

// driftScenario generates the post-build insert stream and the probe
// queries, both from the same shifted distribution.
type driftScenario struct {
	name string
	band float64
	gen  func(rng *rand.Rand) mcost.Object
}

// driftScenarios are the three drift shapes the harness pins:
// uniform→clustered shift, a dimension step (inserts collapse onto a
// 2-D subspace), and a radius shift (inserts compress into a half-
// scale box, halving typical distances).
func driftScenarios() []driftScenario {
	clusterCenters := [][]float64{
		{0.2, 0.8, 0.3, 0.7, 0.5, 0.1},
		{0.9, 0.1, 0.6, 0.2, 0.8, 0.4},
		{0.5, 0.5, 0.1, 0.9, 0.2, 0.6},
	}
	return []driftScenario{
		{
			name: "clustered",
			band: 0.25,
			gen: func(rng *rand.Rand) mcost.Object {
				c := clusterCenters[rng.Intn(len(clusterCenters))]
				v := make(metric.Vector, driftDim)
				for j := range v {
					v[j] = clamp01(c[j] + rng.NormFloat64()*0.05)
				}
				return v
			},
		},
		{
			name: "subspace",
			band: 0.25,
			gen: func(rng *rand.Rand) mcost.Object {
				// A dimension step: the last two coordinates pin to the
				// cube center, so inserts live on a 4-D subspace.
				v := make(metric.Vector, driftDim)
				for j := 0; j < 4; j++ {
					v[j] = rng.Float64()
				}
				v[4], v[5] = 0.5, 0.5
				return v
			},
		},
		{
			name: "scaled",
			band: 0.25,
			gen: func(rng *rand.Rand) mcost.Object {
				// A radius shift: inserts live in [0.15, 0.85]^dim, so
				// typical pairwise distances compress by 0.7.
				v := make(metric.Vector, driftDim)
				for j := range v {
					v[j] = 0.15 + rng.Float64()*0.7
				}
				return v
			},
		},
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// errWindow is the harness's sliding admission-error window: one entry
// per probe batch, error = max over the two cost dimensions of the
// windowed |priced − observed| / observed.
type errWindow struct {
	entries [][4]float64 // servedNodes, servedDists, obsNodes, obsDists
}

func (w *errWindow) push(servedN, servedD, obsN, obsD float64) {
	w.entries = append(w.entries, [4]float64{servedN, servedD, obsN, obsD})
	if len(w.entries) > driftWindow {
		w.entries = w.entries[1:]
	}
}

func (w *errWindow) err() float64 {
	var sN, sD, oN, oD float64
	for _, e := range w.entries {
		sN += e[0]
		sD += e[1]
		oN += e[2]
		oD += e[3]
	}
	rel := func(pred, obs float64) float64 {
		if obs < 1 {
			obs = 1
		}
		d := pred - obs
		if d < 0 {
			d = -d
		}
		return d / obs
	}
	if eN, eD := rel(sN, oN), rel(sD, oD); eN > eD {
		return eN
	} else {
		return eD
	}
}

// probeBatch prices and runs each probe as its own dispatch (the
// admission unit), recording every execution in the arm's error
// window. The price is captured before the query runs, exactly as
// server admission does, so on the recal arm later probes are priced
// with the bias learned from earlier ones.
func probeBatch(t *testing.T, ix *mcost.Index, probes []mcost.Object, w *errWindow) {
	t.Helper()
	for _, q := range probes {
		per := ix.PriceRange(driftRadius)
		tr := mcost.NewQueryTrace()
		if _, err := ix.RangeBatchTraced(context.Background(), []mcost.Object{q}, driftRadius, mcost.QueryBudget{}, tr); err != nil {
			t.Fatalf("probe: %v", err)
		}
		w.push(per.Nodes, per.Dists, float64(tr.TotalNodes()), float64(tr.TotalDists()))
	}
}

func TestDriftHarness(t *testing.T) {
	for _, sc := range driftScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			base := dataset.Uniform(driftBaseN, driftDim, 11)
			build := func() *mcost.Index {
				ix, err := mcost.Build(base.Space, base.Objects, mcost.Options{Seed: 5, Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				return ix
			}
			ixOn, ixOff := build(), build()
			rcfg := recal.Config{Window: 32, Band: sc.band, Seed: 5}
			if err := ixOn.EnableRecalibration(rcfg, base.Objects); err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(99))
			perStage := driftBaseN / driftStages
			var winOn, winOff errWindow
			onInBand := 0
			for stage := 1; stage <= driftStages; stage++ {
				for i := 0; i < perStage; i++ {
					obj := sc.gen(rng)
					if _, err := ixOn.Insert(obj); err != nil {
						t.Fatalf("stage %d insert (recal on): %v", stage, err)
					}
					if _, err := ixOff.Insert(obj); err != nil {
						t.Fatalf("stage %d insert (recal off): %v", stage, err)
					}
				}
				probes := make([]mcost.Object, driftProbes)
				for i := range probes {
					probes[i] = sc.gen(rng)
				}
				probeBatch(t, ixOn, probes, &winOn)
				probeBatch(t, ixOff, probes, &winOff)
				if winOn.err() <= sc.band {
					onInBand++
				}
			}

			if got, want := ixOn.Size(), 2*driftBaseN; got != want {
				t.Fatalf("index must double under the drift stream: size %d, want %d", got, want)
			}
			onErr, offErr := winOn.err(), winOff.err()
			t.Logf("%s: doubled to %d objects; windowed error on=%.3f off=%.3f (band %.2f), on in band %d/%d stages",
				sc.name, ixOn.Size(), onErr, offErr, sc.band, onInBand, driftStages)
			// The pinned contract: with recalibration the admission error
			// is inside the band at the end and for nearly every
			// checkpoint (one transient excursion right after a model
			// refit is the alarm working, not a regression); without it
			// the frozen model has left the band for good.
			if onErr > sc.band {
				t.Errorf("recal ON must end inside the band: error %.3f > band %.2f", onErr, sc.band)
			}
			if onInBand < driftStages-2 {
				t.Errorf("recal ON in band only %d/%d stages", onInBand, driftStages)
			}
			if offErr <= sc.band {
				t.Errorf("recal OFF must leave the band once the index doubled: error %.3f <= band %.2f",
					offErr, sc.band)
			}
			if onErr >= offErr {
				t.Errorf("recal ON must beat OFF: %.3f >= %.3f", onErr, offErr)
			}

			// The recalibrator's own view must agree that drift was
			// observed: writes counted, build-time mass decayed.
			st, ok := ixOn.RecalStats()
			if !ok {
				t.Fatal("RecalStats must report once enabled")
			}
			if st.Inserts != int64(driftBaseN) {
				t.Errorf("recal saw %d inserts, want %d", st.Inserts, driftBaseN)
			}
			if st.BaseWeight >= 1 {
				t.Errorf("base mass must decay under writes: %g", st.BaseWeight)
			}
		})
	}
}
