package advisor

import (
	"errors"
	"math"
	"testing"

	"mcost/internal/core"
	"mcost/internal/histogram"
)

// fuzzPredictor replays whatever the fuzzer invented as the tree
// prediction — including NaN and ±Inf, the recalibration-gone-bad
// shapes Plan must absorb.
type fuzzPredictor struct{ nodes, dists float64 }

func (p fuzzPredictor) PriceRange(float64) core.CostEstimate {
	return core.CostEstimate{Nodes: p.nodes, Dists: p.dists}
}
func (p fuzzPredictor) PriceNN(int) core.CostEstimate {
	return core.CostEstimate{Nodes: p.nodes, Dists: p.dists}
}

// FuzzPlan feeds Plan arbitrary F̂ shapes (via ComputeProfile over a
// fuzzed weighted histogram), arbitrary tree predictions (including
// NaN/±Inf), and arbitrary queries straight off the wire: the contract
// is a valid decision with finite admission pricing, or an error
// matching ErrBadQuery — never a panic, never a nameless engine. This
// is the planner's contract with the server, which feeds it raw client
// input after only basic JSON decoding.
func FuzzPlan(f *testing.F) {
	f.Add(int64(7), 1.0, 0.5, "range", 0.25, 10, 100.0, 200.0)
	f.Add(int64(1), 32.0, 0.0, "nn", -1.0, 0, math.NaN(), math.Inf(1))
	f.Add(int64(3), 1.0, 1e-12, "join", math.Inf(1), -5, 0.0, 0.0)
	f.Add(int64(9), 0.0, 0.0, "", 0.0, 1<<30, 1e300, 1e300)
	f.Fuzz(func(t *testing.T, seed int64, bound, mass float64, kind string, radius float64, k int, treeNodes, treeDists float64) {
		if math.IsNaN(bound) || math.IsInf(bound, 0) || bound < 0 || bound > 1e9 {
			t.Skip()
		}
		// An adversarial F̂: all mass piled into one seed-chosen bin, the
		// degenerate family that used to NaN the correlation dimension.
		weights := make([]float64, 8)
		weights[int(uint64(seed)%8)] = math.Abs(mass)
		prof := Profile{N: 64, ScanNodes: 8, ScanDists: 64}
		if fh, err := histogram.FromWeightedCounts(weights, bound, false); err == nil {
			prof = ComputeProfile(fh, 64, 8, bound, fuzzPredictor{nodes: treeNodes, dists: treeDists})
		}
		q := Query{Kind: Kind(kind), Radius: radius, K: k}
		d, err := Plan(fuzzPredictor{nodes: treeNodes, dists: treeDists}, prof, q)
		if err != nil {
			if !errors.Is(err, ErrBadQuery) {
				t.Fatalf("untyped planning error: %v", err)
			}
			return
		}
		if d.Engine != EngineTree && d.Engine != EngineScan && d.Engine != EngineFanout {
			t.Fatalf("planned unknown engine %q", d.Engine)
		}
		if d.Reason == "" {
			t.Fatal("planned with no reason")
		}
		chosen := d.Predicted()
		if cost := chosen.Nodes + chosen.Dists; math.IsNaN(cost) || math.IsInf(cost, 0) {
			if d.Engine != EngineTree {
				t.Fatalf("non-finite admission price %g on engine %q", cost, d.Engine)
			}
			// A non-finite TREE price can only be chosen if the scan was
			// somehow worse — impossible, since scan cost is always finite.
			t.Fatalf("planner chose the tree at non-finite price %g over finite scan %g",
				cost, d.PredictedScan.Nodes+d.PredictedScan.Dists)
		}
	})
}
