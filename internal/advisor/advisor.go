// Package advisor is the breakdown-aware query planner: it sits between
// the paper's cost model and the execution engines and decides, per
// query, whether the M-tree is still worth traversing or whether the
// metric curse has already won and a flat linear scan is the honest
// plan.
//
// The PODS 1998 model prices a tree traversal from the distance
// distribution F̂; Pestov's concentration bounds (arXiv:0812.0146) show
// that as intrinsic dimension grows, F̂ concentrates — σ/μ shrinks —
// and every metric-tree query degenerates toward reading the whole
// structure. At that point the tree costs MORE than a scan: it reads as
// many pages (fatter ones, since internal nodes carry routing entries)
// and computes as many distances, plus traversal overhead. The advisor
// detects the regime from the same F̂ the cost model already maintains
// and routes each query to the cheaper engine, with both predictions
// attached so the decision is auditable.
package advisor

import (
	"errors"
	"fmt"
	"math"

	"mcost/internal/core"
	"mcost/internal/distdist"
	"mcost/internal/histogram"
)

// ErrBadQuery is the sentinel for structurally invalid queries handed
// to Plan (negative or non-finite radius, k < 1, unknown kind). Match
// with errors.Is.
var ErrBadQuery = errors.New("advisor: invalid query")

// Engine names a query execution strategy.
type Engine string

const (
	// EngineTree traverses the M-tree.
	EngineTree Engine = "tree"
	// EngineScan runs the flat linear scan.
	EngineScan Engine = "scan"
	// EngineFanout is the sharded tree fan-out — the tree plan as
	// executed by a ShardedIndex or the distributed router.
	EngineFanout Engine = "sharded-fanout"
)

// Kind distinguishes the two query shapes the planner prices.
type Kind string

const (
	// KindRange is a similarity range query with a radius.
	KindRange Kind = "range"
	// KindNN is a k-nearest-neighbor query.
	KindNN Kind = "nn"
)

// Query is one similarity query to plan: Radius is read for KindRange,
// K for KindNN.
type Query struct {
	Kind   Kind
	Radius float64
	K      int
}

// Predictor prices tree execution — the facade's recalibration-aware
// PriceRange/PriceNN satisfy it, as does a bare core.MTreeModel via
// ModelPredictor.
type Predictor interface {
	PriceRange(radius float64) core.CostEstimate
	PriceNN(k int) core.CostEstimate
}

// ModelPredictor adapts a bare cost model (no recalibration layer) to
// the Predictor interface using the level-based L-MCM estimates.
type ModelPredictor struct{ Model *core.MTreeModel }

// PriceRange implements Predictor.
func (m ModelPredictor) PriceRange(radius float64) core.CostEstimate {
	return m.Model.RangeL(radius)
}

// PriceNN implements Predictor.
func (m ModelPredictor) PriceNN(k int) core.CostEstimate { return m.Model.NNL(k) }

// Profile is a dataset hardness profile: everything the planner knows
// about how close this dataset sits to the metric-indexing breakdown
// point. It is computed once per build (and refreshed on
// recalibration), entirely from F̂ and the structure stats — no extra
// passes over the data.
type Profile struct {
	// N is the dataset size.
	N int `json:"n"`
	// D2 is the correlation fractal dimension estimated from F̂ (slope
	// of log F(r) vs log r); low D2 means the data lives on a
	// low-dimensional structure the tree can exploit. Valid only when
	// D2Valid — a degenerate F̂ (point-mass distances) has no scaling
	// region and D2 is reported as 0/invalid rather than fabricated.
	D2      float64 `json:"d2"`
	D2Valid bool    `json:"d2_valid"`
	// Concentration is σ/μ of F̂ — the distance-concentration ratio.
	// As it falls toward 0 every pairwise distance looks alike, pruning
	// lemmas stop firing, and metric indexing dies (Pestov).
	Concentration float64 `json:"concentration"`
	// IntrinsicDim is the concentration-based intrinsic dimension
	// ρ = μ²/(2σ²) (Chávez et al.) — the planner's scalar hardness
	// score: it grows monotonically as concentration falls.
	IntrinsicDim float64 `json:"intrinsic_dim"`
	// ScanNodes and ScanDists price the alternative plan: one full
	// linear scan costs ScanNodes sequential page reads (objects packed
	// into leaf-equivalent pages) and ScanDists = N distance
	// computations, independent of the query.
	ScanNodes float64 `json:"scan_nodes"`
	ScanDists float64 `json:"scan_dists"`
	// CrossoverRadius is the smallest range-query radius at which the
	// tree's predicted cost meets the scan's; queries below it plan to
	// the tree, above it to the scan. Negative means the tree never
	// loses within the metric's bound (easy dataset); 0 means the tree
	// loses everywhere (fully concentrated dataset).
	CrossoverRadius float64 `json:"crossover_radius"`
	// CrossoverK is the smallest k at which a k-NN query plans to the
	// scan; 0 means the tree never loses for any k ≤ N.
	CrossoverK int `json:"crossover_k"`
}

// Hardness returns the profile's scalar hardness score — the
// concentration-based intrinsic dimension. It is monotone in the
// "curse": growing hypercube dimension, longer HDC codewords, tighter
// clusters all push it up.
func (p Profile) Hardness() float64 { return p.IntrinsicDim }

// cost collapses a CostEstimate into the planner's scalar objective:
// node reads + distance computations, the two currencies the paper's
// model predicts and the engines meter. Weighting them equally keeps
// the decision auditable against the engines' own counters.
func cost(e core.CostEstimate) float64 { return e.Nodes + e.Dists }

// ComputeProfile derives the hardness profile from the fitted distance
// distribution, the dataset size, the scan plan's page count, and a
// tree-cost predictor. bound is the metric's d+ (the largest possible
// distance, the search range for the radius crossover).
func ComputeProfile(f *histogram.Histogram, n int, scanPages int, bound float64, pred Predictor) Profile {
	prof := Profile{
		N:         n,
		ScanNodes: float64(scanPages),
		ScanDists: float64(n),
	}
	mean := f.Mean()
	std := f.Std()
	if mean > 0 {
		prof.Concentration = std / mean
	}
	if std > 0 {
		prof.IntrinsicDim = mean * mean / (2 * std * std)
	} else if mean > 0 {
		// Point-mass distances: infinite intrinsic dimension, clamped to
		// a large finite sentinel so JSON stays well-formed.
		prof.IntrinsicDim = math.MaxFloat64
	}
	if d2, err := distdist.CorrelationDimension(f, 0, 0); err == nil {
		prof.D2 = d2
		prof.D2Valid = true
	}
	prof.CrossoverRadius = crossoverRadius(pred, prof, bound)
	prof.CrossoverK = crossoverK(pred, prof)
	return prof
}

// crossoverRadius finds the smallest radius where the tree's predicted
// cost reaches the scan's, by bisection on the (monotone in r) tree
// cost. Returns a negative sentinel when the tree wins across the whole
// metric bound, 0 when it loses even at radius 0.
func crossoverRadius(pred Predictor, prof Profile, bound float64) float64 {
	scan := prof.ScanNodes + prof.ScanDists
	treeAt := func(r float64) float64 { return cost(pred.PriceRange(r)) }
	if !(treeAt(bound) >= scan) {
		return -1
	}
	if treeAt(0) >= scan {
		return 0
	}
	lo, hi := 0.0, bound
	for i := 0; i < 64 && hi-lo > bound*1e-9; i++ {
		mid := (lo + hi) / 2
		if treeAt(mid) >= scan {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// crossoverK finds the smallest k whose predicted tree cost reaches the
// scan's, by binary search on the (monotone in k) NN cost. Returns 0
// when the tree wins for every k ≤ N.
func crossoverK(pred Predictor, prof Profile) int {
	scan := prof.ScanNodes + prof.ScanDists
	if prof.N < 1 {
		return 0
	}
	if !(cost(pred.PriceNN(prof.N)) >= scan) {
		return 0
	}
	lo, hi := 1, prof.N
	for lo < hi {
		mid := lo + (hi-lo)/2
		if cost(pred.PriceNN(mid)) >= scan {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Decision is one planned query: the chosen engine and both priced
// alternatives, so callers (admission control, the stats endpoint, the
// experiments) can audit the choice against observed cost.
type Decision struct {
	// Engine is the chosen execution strategy.
	Engine Engine `json:"engine"`
	// PredictedTree and PredictedScan are the two plans' prices in the
	// paper's currency (node reads, distance computations).
	PredictedTree core.CostEstimate `json:"predicted_tree"`
	PredictedScan core.CostEstimate `json:"predicted_scan"`
	// Reason is a one-line human-readable account of the choice.
	Reason string `json:"reason"`
}

// Predicted returns the chosen plan's estimate — the number admission
// control should price the query at.
func (d Decision) Predicted() core.CostEstimate {
	if d.Engine == EngineScan {
		return d.PredictedScan
	}
	return d.PredictedTree
}

// Plan prices both engines for the query and picks the cheaper one by
// total node reads + distance computations. Ties go to the tree (exact
// same price, prefer the index: its pages are hot and its partial
// results arrive best-first). A non-finite tree prediction — a
// recalibration gone bad or a degenerate model — routes to the scan,
// whose cost is always finite and known. Structurally invalid queries
// return an error matching ErrBadQuery; Plan never panics.
func Plan(pred Predictor, prof Profile, q Query) (Decision, error) {
	var tree core.CostEstimate
	switch q.Kind {
	case KindRange:
		if math.IsNaN(q.Radius) || math.IsInf(q.Radius, 0) || q.Radius < 0 {
			return Decision{}, fmt.Errorf("%w: range radius %g", ErrBadQuery, q.Radius)
		}
		tree = pred.PriceRange(q.Radius)
	case KindNN:
		if q.K < 1 {
			return Decision{}, fmt.Errorf("%w: k = %d", ErrBadQuery, q.K)
		}
		tree = pred.PriceNN(q.K)
	default:
		return Decision{}, fmt.Errorf("%w: unknown kind %q", ErrBadQuery, q.Kind)
	}
	scan := core.CostEstimate{Nodes: prof.ScanNodes, Dists: prof.ScanDists}
	d := Decision{PredictedTree: tree, PredictedScan: scan}
	treeCost, scanCost := cost(tree), cost(scan)
	switch {
	case math.IsNaN(treeCost) || math.IsInf(treeCost, 0):
		d.Engine = EngineScan
		d.Reason = fmt.Sprintf("tree prediction non-finite (%g); scan cost %.0f is known", treeCost, scanCost)
	case treeCost <= scanCost:
		d.Engine = EngineTree
		d.Reason = fmt.Sprintf("tree %.0f ≤ scan %.0f (nodes+dists)", treeCost, scanCost)
	default:
		d.Engine = EngineScan
		d.Reason = fmt.Sprintf("tree %.0f > scan %.0f (nodes+dists); concentration σ/μ = %.3f", treeCost, scanCost, prof.Concentration)
	}
	return d, nil
}
