package advisor

import (
	"errors"
	"math"
	"testing"

	"mcost/internal/core"
	"mcost/internal/histogram"
)

// fakePred prices tree queries with pluggable closures, so decision
// logic is tested independently of the real L-MCM.
type fakePred struct {
	rangeFn func(r float64) core.CostEstimate
	nnFn    func(k int) core.CostEstimate
}

func (f fakePred) PriceRange(r float64) core.CostEstimate { return f.rangeFn(r) }
func (f fakePred) PriceNN(k int) core.CostEstimate        { return f.nnFn(k) }

// linearPred prices range queries linearly in radius and NN queries
// linearly in k — monotone, like the real model.
func linearPred(nodesPerUnit, distsPerUnit float64) fakePred {
	return fakePred{
		rangeFn: func(r float64) core.CostEstimate {
			return core.CostEstimate{Nodes: nodesPerUnit * r, Dists: distsPerUnit * r}
		},
		nnFn: func(k int) core.CostEstimate {
			return core.CostEstimate{Nodes: nodesPerUnit * float64(k), Dists: distsPerUnit * float64(k)}
		},
	}
}

func TestPlanPicksCheaperEngine(t *testing.T) {
	pred := linearPred(10, 100) // tree cost = 110*r
	prof := Profile{N: 1000, ScanNodes: 10, ScanDists: 1000} // scan cost = 1010

	small, err := Plan(pred, prof, Query{Kind: KindRange, Radius: 1})
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if small.Engine != EngineTree {
		t.Fatalf("cheap query planned to %s: %s", small.Engine, small.Reason)
	}
	big, err := Plan(pred, prof, Query{Kind: KindRange, Radius: 100})
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if big.Engine != EngineScan {
		t.Fatalf("expensive query planned to %s: %s", big.Engine, big.Reason)
	}
	if got := big.Predicted(); got != big.PredictedScan {
		t.Fatalf("Predicted() = %+v, want the scan estimate", got)
	}
	if big.PredictedScan.Nodes != 10 || big.PredictedScan.Dists != 1000 {
		t.Fatalf("scan estimate %+v does not mirror the profile", big.PredictedScan)
	}

	nn, err := Plan(pred, prof, Query{Kind: KindNN, K: 3})
	if err != nil {
		t.Fatalf("Plan nn: %v", err)
	}
	if nn.Engine != EngineTree {
		t.Fatalf("k=3 planned to %s", nn.Engine)
	}
	nnBig, err := Plan(pred, prof, Query{Kind: KindNN, K: 500})
	if err != nil {
		t.Fatalf("Plan nn: %v", err)
	}
	if nnBig.Engine != EngineScan {
		t.Fatalf("k=500 planned to %s", nnBig.Engine)
	}
}

func TestPlanTieGoesToTree(t *testing.T) {
	pred := fakePred{
		rangeFn: func(float64) core.CostEstimate { return core.CostEstimate{Nodes: 10, Dists: 1000} },
		nnFn:    func(int) core.CostEstimate { return core.CostEstimate{Nodes: 10, Dists: 1000} },
	}
	prof := Profile{N: 1000, ScanNodes: 10, ScanDists: 1000}
	d, err := Plan(pred, prof, Query{Kind: KindRange, Radius: 0.5})
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if d.Engine != EngineTree {
		t.Fatalf("tie planned to %s, want tree", d.Engine)
	}
}

func TestPlanNonFiniteTreePredictionRoutesToScan(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		pred := fakePred{
			rangeFn: func(float64) core.CostEstimate { return core.CostEstimate{Nodes: bad, Dists: 0} },
			nnFn:    func(int) core.CostEstimate { return core.CostEstimate{Nodes: bad, Dists: 0} },
		}
		prof := Profile{N: 100, ScanNodes: 5, ScanDists: 100}
		for _, q := range []Query{{Kind: KindRange, Radius: 1}, {Kind: KindNN, K: 5}} {
			d, err := Plan(pred, prof, q)
			if err != nil {
				t.Fatalf("Plan(%v): %v", q, err)
			}
			if d.Engine != EngineScan {
				t.Fatalf("non-finite prediction planned to %s", d.Engine)
			}
		}
	}
}

func TestPlanBadQueries(t *testing.T) {
	pred := linearPred(1, 1)
	prof := Profile{N: 10, ScanNodes: 1, ScanDists: 10}
	bad := []Query{
		{Kind: KindRange, Radius: -1},
		{Kind: KindRange, Radius: math.NaN()},
		{Kind: KindRange, Radius: math.Inf(1)},
		{Kind: KindNN, K: 0},
		{Kind: KindNN, K: -3},
		{Kind: "join", Radius: 1},
	}
	for _, q := range bad {
		if _, err := Plan(pred, prof, q); !errors.Is(err, ErrBadQuery) {
			t.Fatalf("Plan(%+v): err = %v, want ErrBadQuery", q, err)
		}
	}
}

func TestComputeProfileConcentration(t *testing.T) {
	// A spread-out linear CDF: healthy concentration, valid D2.
	spread := make([]float64, 2000)
	for i := range spread {
		spread[i] = 0.9 * float64(i+1) / float64(len(spread))
	}
	f, err := histogram.FromSamples(spread, 100, 1, false)
	if err != nil {
		t.Fatalf("FromSamples: %v", err)
	}
	pred := linearPred(1, 10)
	prof := ComputeProfile(f, 1000, 20, 1, pred)
	if prof.N != 1000 || prof.ScanDists != 1000 || prof.ScanNodes != 20 {
		t.Fatalf("profile basics wrong: %+v", prof)
	}
	if !(prof.Concentration > 0.3) {
		t.Fatalf("spread distribution got concentration %g", prof.Concentration)
	}
	if !prof.D2Valid {
		t.Fatalf("healthy histogram lost its D2")
	}

	// A tightly concentrated distribution: σ/μ near 0, huge intrinsic
	// dimension, degenerate D2.
	tight := make([]float64, 2000)
	for i := range tight {
		tight[i] = 0.5
	}
	ft, err := histogram.FromSamples(tight, 100, 1, false)
	if err != nil {
		t.Fatalf("FromSamples: %v", err)
	}
	pt := ComputeProfile(ft, 1000, 20, 1, pred)
	if !(pt.Concentration < prof.Concentration) {
		t.Fatalf("concentration did not fall: %g vs %g", pt.Concentration, prof.Concentration)
	}
	if !(pt.Hardness() > prof.Hardness()) {
		t.Fatalf("hardness did not rise: %g vs %g", pt.Hardness(), prof.Hardness())
	}
	if pt.D2Valid {
		t.Fatalf("point-mass histogram claims a valid D2 = %g", pt.D2)
	}
}

func TestCrossoverRadius(t *testing.T) {
	f := flatHistogram(t)
	// Tree cost 1010*r, scan cost 110: crossover at r ≈ 110/1010.
	pred := linearPred(10, 1000)
	prof := ComputeProfile(f, 100, 10, 1, pred)
	want := 110.0 / 1010.0
	if math.Abs(prof.CrossoverRadius-want) > 1e-6 {
		t.Fatalf("crossover radius %g, want %g", prof.CrossoverRadius, want)
	}

	// Tree always cheaper: negative sentinel.
	cheap := linearPred(0.01, 1)
	pc := ComputeProfile(f, 100, 10, 1, cheap)
	if pc.CrossoverRadius >= 0 {
		t.Fatalf("always-cheap tree got crossover %g", pc.CrossoverRadius)
	}
	if pc.CrossoverK != 0 {
		t.Fatalf("always-cheap tree got crossover k %d", pc.CrossoverK)
	}

	// Tree never cheaper: crossover at 0, k at 1.
	dear := fakePred{
		rangeFn: func(float64) core.CostEstimate { return core.CostEstimate{Nodes: 1e6} },
		nnFn:    func(int) core.CostEstimate { return core.CostEstimate{Nodes: 1e6} },
	}
	pd := ComputeProfile(f, 100, 10, 1, dear)
	if pd.CrossoverRadius != 0 {
		t.Fatalf("always-dear tree got crossover %g", pd.CrossoverRadius)
	}
	if pd.CrossoverK != 1 {
		t.Fatalf("always-dear tree got crossover k %d", pd.CrossoverK)
	}
}

func TestCrossoverK(t *testing.T) {
	f := flatHistogram(t)
	// Tree NN cost 11*k, scan 110: crossover at k = 10.
	pred := linearPred(1, 10)
	prof := ComputeProfile(f, 100, 10, 1, pred)
	if prof.CrossoverK != 10 {
		t.Fatalf("crossover k = %d, want 10", prof.CrossoverK)
	}
}

func flatHistogram(t *testing.T) *histogram.Histogram {
	t.Helper()
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = 0.9 * float64(i+1) / float64(len(samples))
	}
	f, err := histogram.FromSamples(samples, 100, 1, false)
	if err != nil {
		t.Fatalf("FromSamples: %v", err)
	}
	return f
}

// Plan's fuzz contract lives in fuzz_test.go (FuzzPlan): arbitrary
// F̂/predictor/query → valid decision or typed error, never a panic.
