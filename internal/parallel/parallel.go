// Package parallel provides the small worker-pool primitives the hot
// paths of the cost model share: distance-distribution estimation, HV
// (homogeneity of viewpoints) computation, and measured query workloads
// all fan the same shape of work out — n independent items, results
// keyed by item index — across a bounded number of goroutines.
//
// Determinism is the design constraint. Every primitive here either
// writes results into caller-owned slots indexed by item (so assembly
// order cannot depend on scheduling), or hands the caller a fixed
// per-stream seed derived from a base seed (SplitSeed), so the random
// streams a computation consumes are a function of the item index, never
// of which worker ran it. Integer counters merged across workers are
// order-independent by commutativity; float reductions must be performed
// by the caller in index order over the result slots. Under these rules
// results are bit-identical for any worker count, which the distdist
// tests assert.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: n > 0 is used as given,
// n <= 0 selects runtime.NumCPU(). This is the meaning of the Workers
// field on Options structs throughout the module.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// For runs fn(i) for every i in [0, n) using at most `workers`
// goroutines (resolved via Workers). Items are handed out in index
// order from a shared cursor; fn must write any per-item result into a
// caller-owned slot keyed by i so that output is independent of
// scheduling. With workers <= 1 (after resolution) everything runs on
// the calling goroutine.
//
// On error, no new items are started, all in-flight items finish, and
// the lowest-indexed error among the items that ran is returned.
func For(workers, n int, fn func(i int) error) error {
	return ForWorker(workers, n, func(_, i int) error { return fn(i) })
}

// ForWorker is For with the worker's identity exposed: fn receives
// (worker, i) with worker in [0, resolved count). It exists for sharded
// accumulation — the caller allocates one shard per worker, each fn
// invocation updates shard[worker] without locking, and the shards are
// merged after ForWorker returns. Shard contents must be merged with an
// order-independent operation (integer counts, max, ...) for the result
// to stay worker-count invariant.
func ForWorker(workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		cursor  atomic.Int64
		mu      sync.Mutex
		errIdx  = -1
		firstEr error
		wg      sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, firstEr = i, err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return errIdx >= 0
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n || failed() {
					return
				}
				if err := fn(worker, i); err != nil {
					fail(i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return firstEr
}

// SplitSeed derives the seed of an independent random stream from a base
// seed and a stream index, via a splitmix64 finalizer. Work split into
// fixed chunks, each seeded with SplitSeed(seed, chunk), draws the same
// random values no matter how chunks are assigned to workers — the
// seed-splitting scheme that keeps sampled estimates reproducible at any
// worker count.
func SplitSeed(seed int64, stream int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(stream)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
