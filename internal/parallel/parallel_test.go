package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.NumCPU() {
		t.Fatalf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(-2); got != runtime.NumCPU() {
		t.Fatalf("Workers(-2) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
}

func TestForRunsEveryItemOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 33} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		err := For(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEmptyAndSingle(t *testing.T) {
	if err := For(4, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := For(4, 1, func(i int) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("single item not run")
	}
}

func TestForDeterministicResultSlots(t *testing.T) {
	const n = 500
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 7} {
		got := make([]int, n)
		if err := For(workers, n, func(i int) error {
			got[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d", workers, i, got[i])
			}
		}
	}
}

func TestForErrorPropagates(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := For(workers, 100, func(i int) error {
			if i == 17 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
	}
}

func TestForErrorLowestIndexWins(t *testing.T) {
	errLo, errHi := errors.New("lo"), errors.New("hi")
	err := For(4, 200, func(i int) error {
		switch i {
		case 3:
			return errLo
		case 150:
			return errHi
		}
		return nil
	})
	// Item 3 is always handed out before item 150, so the lower-indexed
	// error must win.
	if !errors.Is(err, errLo) {
		t.Fatalf("err = %v, want lo", err)
	}
}

func TestForWorkerShards(t *testing.T) {
	const n, workers = 2048, 5
	shards := make([]int64, workers)
	err := ForWorker(workers, n, func(w, i int) error {
		shards[w] += int64(i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var got int64
	for _, s := range shards {
		got += s
	}
	if want := int64(n) * (n - 1) / 2; got != want {
		t.Fatalf("shard sum = %d, want %d", got, want)
	}
}

func TestForWorkerIDsInRange(t *testing.T) {
	const workers = 3
	err := ForWorker(workers, 100, func(w, i int) error {
		if w < 0 || w >= workers {
			t.Errorf("worker id %d out of range", w)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitSeedStreamsDiffer(t *testing.T) {
	seen := make(map[int64]int)
	for stream := 0; stream < 1000; stream++ {
		s := SplitSeed(42, stream)
		if prev, dup := seen[s]; dup {
			t.Fatalf("streams %d and %d collide on seed %d", prev, stream, s)
		}
		seen[s] = stream
	}
	if SplitSeed(1, 0) == SplitSeed(2, 0) {
		t.Fatal("different base seeds give the same stream seed")
	}
	if SplitSeed(7, 3) != SplitSeed(7, 3) {
		t.Fatal("SplitSeed not a pure function")
	}
}
