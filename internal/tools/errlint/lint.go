package main

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// modulePath is the import-path prefix the custom importer resolves to
// repository directories. Matches the go.mod module line.
const modulePath = "mcost"

// Finding is one discarded error, formatted file:line: message.
type Finding struct {
	Pos     token.Position
	Call    string
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: unchecked error from %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Call)
}

// LintModule type-checks every non-test package under root and returns
// findings sorted by position.
func LintModule(root string) ([]Finding, error) {
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	im := &repoImporter{
		fset: fset,
		root: root,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: map[string]*types.Package{},
	}
	var findings []Finding
	for _, dir := range dirs {
		fs, err := lintDir(fset, im, root, dir)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return findings, nil
}

// packageDirs lists every directory under root holding non-test Go
// files, skipping hidden directories and testdata.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// lintDir type-checks one package directory and reports its discarded
// errors.
func lintDir(fset *token.FileSet, im *repoImporter, root, dir string) ([]Finding, error) {
	files, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := &types.Info{Types: map[ast.Expr]types.TypeAndValue{}}
	conf := types.Config{Importer: im}
	if _, err := conf.Check(importPathFor(root, dir), fset, files, info); err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", dir, err)
	}
	var findings []Finding
	for _, file := range files {
		skip := nolintLines(fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			tv, ok := info.Types[call]
			if !ok || !returnsError(tv.Type) {
				return true
			}
			if exempt(info, call) {
				return true
			}
			pos := fset.Position(call.Pos())
			if skip[pos.Line] {
				return true
			}
			findings = append(findings, Finding{Pos: pos, Call: callName(call)})
			return true
		})
	}
	return findings, nil
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Honor build constraints: per-platform variants of the same
		// type (e.g. pager's Mapping) must not be type-checked together.
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// nolintLines collects the lines carrying a //nolint:errcheck comment.
func nolintLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "nolint:errcheck") {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// exempt mirrors errcheck's default excludes: terminal printing (fmt
// Print* / Fprint* to os.Stdout/os.Stderr, which cannot usefully handle
// a write error) and writes to sticky-error writers (strings.Builder
// never fails; bufio.Writer surfaces its error at the checked Flush).
func exempt(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if tv, ok := info.Types[sel.X]; ok && stickyWriter(tv.Type) {
		return true
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "fmt" {
		return false
	}
	switch sel.Sel.Name {
	case "Print", "Printf", "Println":
		return true
	case "Fprint", "Fprintf", "Fprintln":
		if len(call.Args) == 0 {
			return false
		}
		if tv, ok := info.Types[call.Args[0]]; ok && stickyWriter(tv.Type) {
			return true
		}
		if w, ok := call.Args[0].(*ast.SelectorExpr); ok {
			if x, ok := w.X.(*ast.Ident); ok && x.Name == "os" &&
				(w.Sel.Name == "Stdout" || w.Sel.Name == "Stderr") {
				return true
			}
		}
	}
	return false
}

// stickyWriter reports whether t is strings.Builder or bufio.Writer
// (possibly behind a pointer).
func stickyWriter(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	switch n.Obj().Pkg().Path() + "." + n.Obj().Name() {
	case "strings.Builder", "bufio.Writer":
		return true
	}
	return false
}

var errType = types.Universe.Lookup("error").Type()

// returnsError reports whether a call result type includes an error.
func returnsError(t types.Type) bool {
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				return true
			}
		}
		return false
	default:
		return t != nil && types.Identical(t, errType)
	}
}

func callName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		if x, ok := fn.X.(*ast.Ident); ok {
			return x.Name + "." + fn.Sel.Name
		}
		return fn.Sel.Name
	default:
		return "call"
	}
}

// importPathFor maps a repo directory to its module import path.
func importPathFor(root, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return modulePath
	}
	return modulePath + "/" + filepath.ToSlash(rel)
}

// repoImporter resolves module-internal import paths to repository
// directories (type-checking them on demand, with caching) and
// delegates everything else to the source-based standard importer.
type repoImporter struct {
	fset *token.FileSet
	root string
	std  types.Importer
	pkgs map[string]*types.Package
}

func (im *repoImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := im.pkgs[path]; ok {
		return pkg, nil
	}
	if path == modulePath || strings.HasPrefix(path, modulePath+"/") {
		dir := filepath.Join(im.root, strings.TrimPrefix(strings.TrimPrefix(path, modulePath), "/"))
		files, err := parseDir(im.fset, dir)
		if err != nil {
			return nil, err
		}
		conf := types.Config{Importer: im}
		pkg, err := conf.Check(path, im.fset, files, nil)
		if err != nil {
			return nil, err
		}
		im.pkgs[path] = pkg
		return pkg, nil
	}
	pkg, err := im.std.Import(path)
	if err != nil {
		return nil, err
	}
	im.pkgs[path] = pkg
	return pkg, nil
}
