package main

import (
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

func lintSource(t *testing.T, src string) []Finding {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	im := &repoImporter{
		fset: fset,
		root: dir,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: map[string]*types.Package{},
	}
	findings, err := lintDir(fset, im, dir, dir)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func TestFlagsDiscardedError(t *testing.T) {
	findings := lintSource(t, `package p

import "os"

func f() {
	os.Remove("x")
}
`)
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want 1", findings)
	}
	if findings[0].Call != "os.Remove" || findings[0].Pos.Line != 6 {
		t.Errorf("finding = %+v", findings[0])
	}
}

func TestCheckedErrorClean(t *testing.T) {
	findings := lintSource(t, `package p

import "os"

func f() error {
	if err := os.Remove("x"); err != nil {
		return err
	}
	return nil
}
`)
	if len(findings) != 0 {
		t.Fatalf("findings = %v, want none", findings)
	}
}

func TestNolintSuppresses(t *testing.T) {
	findings := lintSource(t, `package p

import "os"

func f() {
	os.Remove("x") //nolint:errcheck // best-effort cleanup
}
`)
	if len(findings) != 0 {
		t.Fatalf("findings = %v, want none (nolint)", findings)
	}
}

func TestDeferAndPrintExempt(t *testing.T) {
	findings := lintSource(t, `package p

import (
	"fmt"
	"os"
	"strings"
)

func f() {
	g, _ := os.Create("x")
	defer g.Close()
	fmt.Println("hello")
	fmt.Fprintf(os.Stderr, "oops\n")
	var sb strings.Builder
	sb.WriteString("never fails")
	_ = sb.String()
}
`)
	if len(findings) != 0 {
		t.Fatalf("findings = %v, want none (exempt idioms)", findings)
	}
}

func TestVoidCallsIgnored(t *testing.T) {
	findings := lintSource(t, `package p

import "sort"

func f(xs []int) {
	sort.Ints(xs)
}
`)
	if len(findings) != 0 {
		t.Fatalf("findings = %v, want none (no error result)", findings)
	}
}

// TestModuleIsClean runs the real linter over the repository — the same
// gate CI applies.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := findModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	findings, err := LintModule(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Error(f)
	}
}
