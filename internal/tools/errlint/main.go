// Command errlint reports discarded error return values in the repo's
// non-test Go files. A hardened storage stack is only as good as its
// callers: an ignored error from a pager, codec, or snapshot call turns
// a typed, recoverable failure into silent corruption, so CI runs this
// linter over every package.
//
// The check is the classic errcheck rule scoped to what matters here:
// an expression statement calling a function whose result set includes
// an error is a finding, unless the line carries a //nolint:errcheck
// comment. Deferred and go statements are exempt (the idiomatic
// `defer f.Close()`), as are _test.go files.
//
// Usage (from anywhere inside the module):
//
//	go run ./internal/tools/errlint
//
// Exit status 1 when findings exist, 2 on operational errors.
package main

import (
	"fmt"
	"os"
)

func main() {
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "errlint:", err)
		os.Exit(2)
	}
	findings, err := LintModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "errlint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "errlint: %d unchecked error(s)\n", len(findings))
		os.Exit(1)
	}
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(dir + "/go.mod"); err == nil {
			return dir, nil
		}
		parent := dirOf(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

func dirOf(p string) string {
	for i := len(p) - 1; i > 0; i-- {
		if p[i] == '/' {
			return p[:i]
		}
	}
	return p
}
