// Package histogram implements the equi-width histogram representation of
// distance distributions used throughout the cost model. The paper
// approximates the distance distribution F by an equi-width histogram
// with 100 bins for continuous metrics and 25 bins (one per integer
// distance) for the edit metric; this package generalizes both.
//
// A Histogram stores cumulative counts at bin edges; the CDF F(x) is the
// piecewise-linear interpolation between edges (a step function can be
// requested for discrete metrics), the density f(x) is piecewise
// constant, and the quantile function F^-1 inverts the interpolation.
package histogram

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Histogram is an equi-width cumulative histogram over [0, Bound]. The
// zero value is not usable; construct with New or FromSamples.
type Histogram struct {
	bound    float64   // d+: upper edge of the last bin
	width    float64   // bin width = bound / bins
	cum      []float64 // cum[i] = fraction of samples <= edge i+1; len = bins
	total    int64     // number of samples accumulated
	discrete bool      // integer-valued metric: CDF is a right-continuous step function
}

// New returns an empty histogram with the given number of bins over
// [0, bound]. For discrete metrics pass discrete=true and bins equal to
// bound (one bin per integer distance), as the paper does for the edit
// metric.
func New(bins int, bound float64, discrete bool) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("histogram: bins = %d, need > 0", bins)
	}
	if !(bound > 0) || math.IsInf(bound, 0) || math.IsNaN(bound) {
		return nil, fmt.Errorf("histogram: invalid bound %v", bound)
	}
	return &Histogram{
		bound:    bound,
		width:    bound / float64(bins),
		cum:      make([]float64, bins),
		discrete: discrete,
	}, nil
}

// FromSamples builds a histogram from observed distance values. Values
// outside [0, bound] are clamped: the metric-space contract guarantees
// they can only stray by floating-point noise.
func FromSamples(samples []float64, bins int, bound float64, discrete bool) (*Histogram, error) {
	h, err := New(bins, bound, discrete)
	if err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, errors.New("histogram: no samples")
	}
	counts := make([]int64, bins)
	for _, v := range samples {
		counts[h.binOf(v)]++
	}
	h.setCounts(counts, int64(len(samples)))
	return h, nil
}

// FromWeightedCounts builds a histogram from non-negative per-bin
// weights, normalizing them into cumulative fractions. It exists for
// the online recalibrator, which blends a decaying build-time count
// vector with live sampled counts: the blend is fractional, so the
// integer-count constructors cannot express it. N() reports the
// rounded total weight; such a histogram is not meant to round-trip
// through Merge, whose integer-recovery arithmetic assumes counts.
func FromWeightedCounts(weights []float64, bound float64, discrete bool) (*Histogram, error) {
	h, err := New(len(weights), bound, discrete)
	if err != nil {
		return nil, err
	}
	var sum float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("histogram: invalid weight %v at bin %d", w, i)
		}
		sum += w
	}
	if sum <= 0 {
		return nil, errors.New("histogram: no weight")
	}
	run := 0.0
	for i, w := range weights {
		run += w
		h.cum[i] = run / sum
	}
	h.cum[len(h.cum)-1] = 1
	h.total = int64(math.Round(sum))
	if h.total < 1 {
		h.total = 1
	}
	return h, nil
}

// Accumulator incrementally counts samples and produces a Histogram.
// It exists so distance sampling loops do not need to materialize every
// sample; memory is O(bins) regardless of sample count.
type Accumulator struct {
	h      *Histogram
	counts []int64
	n      int64
}

// NewAccumulator returns an empty accumulator with the given shape.
func NewAccumulator(bins int, bound float64, discrete bool) (*Accumulator, error) {
	h, err := New(bins, bound, discrete)
	if err != nil {
		return nil, err
	}
	return &Accumulator{h: h, counts: make([]int64, bins)}, nil
}

// Add records one sample.
func (a *Accumulator) Add(v float64) {
	a.counts[a.h.binOf(v)]++
	a.n++
}

// N returns the number of samples added so far.
func (a *Accumulator) N() int64 { return a.n }

// Merge adds every count of other into a, as if other's samples had been
// Added to a directly. The two accumulators must share the same shape
// (bins, bound, discreteness). Because counts are integers, merging a set
// of accumulators yields the same result in any order — the property
// that lets parallel estimation shard one accumulator per worker and
// still produce bit-identical histograms at any worker count.
func (a *Accumulator) Merge(other *Accumulator) error {
	if err := sameShape(a.h, other.h); err != nil {
		return err
	}
	for i, c := range other.counts {
		a.counts[i] += c
	}
	a.n += other.n
	return nil
}

func sameShape(a, b *Histogram) error {
	if len(a.cum) != len(b.cum) || a.bound != b.bound || a.discrete != b.discrete {
		return fmt.Errorf("histogram: shape mismatch: %d bins over [0,%g] discrete=%v vs %d bins over [0,%g] discrete=%v",
			len(a.cum), a.bound, a.discrete, len(b.cum), b.bound, b.discrete)
	}
	return nil
}

// Merge combines finalized histograms of identical shape into one, as if
// all their samples had been accumulated together. Each histogram's
// integer bin counts are recovered from its cumulative fractions and
// sample count, summed, and re-normalized.
func Merge(hs ...*Histogram) (*Histogram, error) {
	if len(hs) == 0 {
		return nil, errors.New("histogram: nothing to merge")
	}
	first := hs[0]
	counts := make([]int64, len(first.cum))
	var total int64
	for _, h := range hs {
		if err := sameShape(first, h); err != nil {
			return nil, err
		}
		var prev int64
		for i := range h.cum {
			// cum[i] was computed as float64(run)/float64(total); rounding
			// run back from the product recovers the exact integer because
			// the relative error of one division is far below 1/2 ULP of
			// any representable count.
			run := int64(math.Round(h.cum[i] * float64(h.total)))
			counts[i] += run - prev
			prev = run
		}
		total += h.total
	}
	if total == 0 {
		return nil, errors.New("histogram: merging empty histograms")
	}
	out, err := New(len(first.cum), first.bound, first.discrete)
	if err != nil {
		return nil, err
	}
	out.setCounts(counts, total)
	return out, nil
}

// Histogram finalizes and returns the histogram. The accumulator may keep
// receiving samples; each call snapshots the current state.
func (a *Accumulator) Histogram() (*Histogram, error) {
	if a.n == 0 {
		return nil, errors.New("histogram: no samples accumulated")
	}
	h, err := New(len(a.counts), a.h.bound, a.h.discrete)
	if err != nil {
		return nil, err
	}
	h.setCounts(a.counts, a.n)
	return h, nil
}

func (h *Histogram) binOf(v float64) int {
	if v <= 0 {
		return 0
	}
	i := int(v / h.width)
	if h.discrete {
		// Integer distance k belongs to bin k-1 (bin i covers (i, i+1]);
		// distance 0 contributes to bin 0, which also holds F(edge 1).
		i = int(math.Ceil(v/h.width)) - 1
		if i < 0 {
			i = 0
		}
	} else if float64(i)*h.width == v && i > 0 {
		i-- // right-closed bins: edge values fall in the lower bin
	}
	if i >= len(h.cum) {
		i = len(h.cum) - 1
	}
	return i
}

func (h *Histogram) setCounts(counts []int64, total int64) {
	var run int64
	for i, c := range counts {
		run += c
		h.cum[i] = float64(run) / float64(total)
	}
	h.total = total
	// Guard against accumulated floating error at the top edge.
	h.cum[len(h.cum)-1] = 1
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.cum) }

// Bound returns the distance bound d+ (upper edge of the last bin).
func (h *Histogram) Bound() float64 { return h.bound }

// N returns the number of samples the histogram was built from.
func (h *Histogram) N() int64 { return h.total }

// Discrete reports whether the histogram treats the metric as
// integer-valued.
func (h *Histogram) Discrete() bool { return h.discrete }

// CDF evaluates F(x), the fraction of distances <= x. For continuous
// histograms the value interpolates linearly between bin edges; for
// discrete ones it is the step function jumping at integer distances.
// CDF(x) = 0 for x < 0 and 1 for x >= Bound. Note F(0) for discrete
// histograms equals the mass at distance zero only if the first bin
// separates it; with one bin per integer, F(0) is approximated by 0
// (distance-0 mass merges into bin 1), matching the paper's 25-bin
// treatment where F(1) is the first stored value.
func (h *Histogram) CDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x >= h.bound {
		return 1
	}
	if h.discrete {
		// Right-continuous step function: value jumps at each edge.
		k := int(math.Floor(x / h.width)) // number of whole bins fully covered
		if k <= 0 {
			return 0
		}
		return h.cum[k-1]
	}
	pos := x / h.width
	i := int(pos)
	if i >= len(h.cum) {
		return 1
	}
	frac := pos - float64(i)
	lo := 0.0
	if i > 0 {
		lo = h.cum[i-1]
	}
	return lo + frac*(h.cum[i]-lo)
}

// PDF evaluates the density f(x): piecewise constant within each bin.
// For discrete histograms it returns the probability mass spread over the
// unit bin (mass / width), which integrates correctly.
func (h *Histogram) PDF(x float64) float64 {
	if x < 0 || x >= h.bound {
		return 0
	}
	i := int(x / h.width)
	if i >= len(h.cum) {
		i = len(h.cum) - 1
	}
	lo := 0.0
	if i > 0 {
		lo = h.cum[i-1]
	}
	return (h.cum[i] - lo) / h.width
}

// Quantile evaluates the generalized inverse F⁻¹(p) = inf{x : F(x) ≥ p}
// for p in [0,1]. The vp-tree cost model uses it to estimate cutoff
// values (Section 5 of the paper). Edge conventions, pinned by the
// property tests:
//
//   - p ≥ 1 returns bound, the top of the support.
//   - p ≤ 0 returns the bottom of the support, lim_{p→0⁺} F⁻¹(p): the
//     left edge of the first nonempty bin (continuous) or the first
//     distance carrying mass (discrete) — not 0, which would sit below
//     the support whenever leading bins are empty. An all-empty
//     histogram returns 0.
//   - Flat CDF segments resolve to their left end: the infimum over
//     {x : F(x) ≥ p} when many x reach p.
//
// Minimality invariant: CDF(Quantile(p)) ≥ p, and no smaller x (within
// the support) satisfies it.
func (h *Histogram) Quantile(p float64) float64 {
	if p >= 1 {
		return h.bound
	}
	if p <= 0 {
		i0 := h.firstNonempty()
		if i0 < 0 {
			return 0
		}
		if h.discrete {
			return float64(i0+1) * h.width // first distance with positive mass
		}
		return float64(i0) * h.width // left edge of the first nonempty bin
	}
	i := sort.SearchFloat64s(h.cum, p)
	if i >= len(h.cum) {
		return h.bound
	}
	if h.discrete {
		return float64(i+1) * h.width // the integer distance at which F jumps past p
	}
	hi := h.cum[i]
	lo := 0.0
	if i > 0 {
		lo = h.cum[i-1]
	}
	if hi == lo {
		// A flat segment exactly at p: take its left end (the infimum).
		return float64(i) * h.width
	}
	frac := (p - lo) / (hi - lo)
	return (float64(i) + frac) * h.width
}

// firstNonempty returns the index of the first bin with positive mass,
// or -1 for an empty histogram.
func (h *Histogram) firstNonempty() int {
	prev := 0.0
	for i, c := range h.cum {
		if c > prev {
			return i
		}
		prev = c
	}
	return -1
}

// Mean returns the mean distance implied by the histogram, integrating
// d+ - integral of F via the survival function: E[X] = ∫ (1-F(x)) dx.
func (h *Histogram) Mean() float64 {
	// For the piecewise-linear CDF the integral is exact via trapezoids
	// over bin edges; for discrete, each bin contributes (1-F(edge)) * width
	// with F constant across the bin.
	var integral float64
	prev := 0.0
	for i := range h.cum {
		if h.discrete {
			integral += (1 - prev) * h.width
		} else {
			integral += (1 - (prev+h.cum[i])/2) * h.width
		}
		prev = h.cum[i]
	}
	return integral
}

// Std returns the standard deviation of the distance implied by the
// histogram's shape — the σ of the concentration ratio σ/μ that flags
// high intrinsic dimension (as μ grows and σ shrinks, every pairwise
// distance looks alike and metric pruning stops working). Bin mass is
// taken uniform within each bin for continuous histograms and at the
// bin's distance value for discrete ones, matching Mean's conventions.
func (h *Histogram) Std() float64 {
	mean := h.Mean()
	var sq float64 // E[X^2]
	prev := 0.0
	for i := range h.cum {
		mass := h.cum[i] - prev
		if mass > 0 {
			if h.discrete {
				v := h.Edge(i)
				sq += mass * v * v
			} else {
				a := float64(i) * h.width
				b := h.Edge(i)
				sq += mass * (a*a + a*b + b*b) / 3
			}
		}
		prev = h.cum[i]
	}
	v := sq - mean*mean
	if v < 0 {
		v = 0 // floating noise on (near-)point-mass histograms
	}
	return math.Sqrt(v)
}

// Edge returns the upper edge of bin i (0-based): (i+1)*width.
func (h *Histogram) Edge(i int) float64 { return float64(i+1) * h.width }

// CumAt returns F at the upper edge of bin i, i.e. the stored cumulative
// fraction. It panics on out-of-range i.
func (h *Histogram) CumAt(i int) float64 { return h.cum[i] }

// Clone returns an independent copy.
func (h *Histogram) Clone() *Histogram {
	out := &Histogram{bound: h.bound, width: h.width, total: h.total, discrete: h.discrete}
	out.cum = append([]float64(nil), h.cum...)
	return out
}

// Rebinned returns a new histogram with the given (smaller) bin count by
// resampling the CDF at the coarser edges. Used by the bin-count ablation.
func (h *Histogram) Rebinned(bins int) (*Histogram, error) {
	out, err := New(bins, h.bound, h.discrete)
	if err != nil {
		return nil, err
	}
	for i := 0; i < bins; i++ {
		out.cum[i] = h.CDF(out.Edge(i))
	}
	out.cum[bins-1] = 1
	out.total = h.total
	return out, nil
}

// Truncated returns the distance distribution conditioned on X <= cap:
// F_i(x) = F(x)/F(cap) for x <= cap, 1 beyond (paper Eq. 22). The result
// keeps the same bin granularity over the reduced bound. If F(cap) is 0
// the result is a degenerate point mass at 0 over [0,cap].
func (h *Histogram) Truncated(cap float64) (*Histogram, error) {
	if cap <= 0 || cap > h.bound {
		return nil, fmt.Errorf("histogram: truncation cap %g outside (0, %g]", cap, h.bound)
	}
	denom := h.CDF(cap)
	bins := len(h.cum)
	out, err := New(bins, cap, h.discrete)
	if err != nil {
		return nil, err
	}
	for i := 0; i < bins; i++ {
		if denom <= 0 {
			out.cum[i] = 1
			continue
		}
		v := h.CDF(out.Edge(i)) / denom
		if v > 1 {
			v = 1
		}
		out.cum[i] = v
	}
	out.cum[bins-1] = 1
	out.total = h.total
	return out, nil
}
