package histogram

import (
	"math"
	"math/rand"
	"testing"
)

// randomHistogram builds a histogram from random samples with a random
// shape, occasionally forcing empty bins and point masses so the
// properties are exercised on degenerate shapes too.
func randomHistogram(rng *rand.Rand) *Histogram {
	discrete := rng.Intn(2) == 1
	var bins int
	var bound float64
	if discrete {
		bins = 1 + rng.Intn(40)
		bound = float64(bins) // one bin per integer distance, as the paper does
	} else {
		bins = 1 + rng.Intn(120)
		bound = 0.25 + 4*rng.Float64()
	}
	n := 1 + rng.Intn(2000)
	samples := make([]float64, n)
	switch rng.Intn(3) {
	case 0: // uniform over the full range
		for i := range samples {
			samples[i] = rng.Float64() * bound
		}
	case 1: // clustered in a narrow band: most bins stay empty
		center := rng.Float64() * bound
		spread := bound / 20
		for i := range samples {
			samples[i] = math.Min(math.Max(center+spread*(rng.Float64()-0.5), 0), bound)
		}
	default: // point mass
		v := rng.Float64() * bound
		for i := range samples {
			samples[i] = v
		}
	}
	if discrete {
		for i := range samples {
			samples[i] = math.Round(samples[i])
		}
	}
	h, err := FromSamples(samples, bins, bound, discrete)
	if err != nil {
		panic(err)
	}
	return h
}

// TestCDFProperties checks that every generated histogram's CDF behaves
// like a distribution function: 0 below the support, 1 at the bound,
// and monotonically non-decreasing throughout.
func TestCDFProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		h := randomHistogram(rng)
		if got := h.CDF(-0.5); got != 0 {
			t.Fatalf("trial %d: CDF(-0.5) = %g, want 0", trial, got)
		}
		if got := h.CDF(h.Bound()); got != 1 {
			t.Fatalf("trial %d: CDF(bound) = %g, want 1", trial, got)
		}
		if got := h.CDF(h.Bound() * 2); got != 1 {
			t.Fatalf("trial %d: CDF(2*bound) = %g, want 1", trial, got)
		}
		prev := 0.0
		for i := 0; i <= 400; i++ {
			x := h.Bound() * float64(i) / 400
			v := h.CDF(x)
			if v < prev {
				t.Fatalf("trial %d: CDF not monotone: F(%g)=%g < F(prev)=%g", trial, x, v, prev)
			}
			if v < 0 || v > 1 {
				t.Fatalf("trial %d: CDF(%g)=%g outside [0,1]", trial, x, v)
			}
			prev = v
		}
	}
}

// TestQuantileRoundTrip checks the Galois connection between F and
// F^-1: Quantile(p) is the smallest x with F(x) >= p, so
// F(Quantile(p)) >= p must hold for every p, with near-equality for
// continuous histograms whose CDF is strictly increasing. Quantile must
// also be monotone in p.
func TestQuantileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		h := randomHistogram(rng)
		prevQ := 0.0
		for i := 1; i <= 100; i++ {
			p := float64(i) / 100
			q := h.Quantile(p)
			if q < prevQ {
				t.Fatalf("trial %d: Quantile not monotone: F^-1(%g)=%g < %g", trial, p, q, prevQ)
			}
			prevQ = q
			if q < 0 || q > h.Bound() {
				t.Fatalf("trial %d: Quantile(%g)=%g outside [0,%g]", trial, p, q, h.Bound())
			}
			if f := h.CDF(q); f < p-1e-9 {
				t.Fatalf("trial %d: F(F^-1(%g)) = %g < p (q=%g, discrete=%v)",
					trial, p, f, q, h.Discrete())
			}
		}
	}
}

// TestQuantileRoundTripTight checks the stronger property on a
// continuous histogram with every bin populated: there the CDF is
// strictly increasing and piecewise linear, so F(F^-1(q)) == q up to
// floating-point error.
func TestQuantileRoundTripTight(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const bins = 50
	samples := make([]float64, 0, bins*20)
	for b := 0; b < bins; b++ {
		for j := 0; j < 1+rng.Intn(30); j++ {
			samples = append(samples, (float64(b)+0.5)/bins)
		}
	}
	h, err := FromSamples(samples, bins, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 1000; i++ {
		p := float64(i) / 1000
		if f := h.CDF(h.Quantile(p)); math.Abs(f-p) > 1e-12 {
			t.Fatalf("F(F^-1(%g)) = %g, |diff| = %g", p, f, math.Abs(f-p))
		}
	}
}

// TestPDFIntegratesToOneProperty integrates the piecewise-constant
// density with a per-bin trapezoid rule (sampling the density at an
// interior point of each bin, exact for a function constant within
// bins) and requires total mass 1 on every randomly generated shape —
// strengthening the single-case TestPDFIntegratesToOne.
func TestPDFIntegratesToOneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		h := randomHistogram(rng)
		width := h.Bound() / float64(h.Bins())
		var mass float64
		for i := 0; i < h.Bins(); i++ {
			mid := (float64(i) + 0.5) * width
			mass += h.PDF(mid) * width
		}
		if math.Abs(mass-1) > 1e-9 {
			t.Fatalf("trial %d: density integrates to %g, want 1 (bins=%d, bound=%g, discrete=%v)",
				trial, mass, h.Bins(), h.Bound(), h.Discrete())
		}
		if h.PDF(-0.1) != 0 || h.PDF(h.Bound()) != 0 || h.PDF(h.Bound()+1) != 0 {
			t.Fatalf("trial %d: PDF nonzero outside support", trial)
		}
	}
}

// TestCDFPDFConsistency verifies the fundamental theorem on bin edges:
// for continuous histograms, F(edge_{i+1}) - F(edge_i) equals the bin's
// density times its width.
func TestCDFPDFConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		h := randomHistogram(rng)
		if h.Discrete() {
			continue
		}
		width := h.Bound() / float64(h.Bins())
		for i := 0; i < h.Bins(); i++ {
			lo := float64(i) * width
			hi := h.Edge(i)
			dF := h.CDF(hi) - h.CDF(lo)
			area := h.PDF(lo+width/2) * width
			if math.Abs(dF-area) > 1e-9 {
				t.Fatalf("trial %d bin %d: dF=%g but pdf*width=%g", trial, i, dF, area)
			}
		}
	}
}
