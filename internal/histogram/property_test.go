package histogram

import (
	"math"
	"math/rand"
	"testing"
)

// randomHistogram builds a histogram from random samples with a random
// shape, occasionally forcing empty bins and point masses so the
// properties are exercised on degenerate shapes too.
func randomHistogram(rng *rand.Rand) *Histogram {
	discrete := rng.Intn(2) == 1
	var bins int
	var bound float64
	if discrete {
		bins = 1 + rng.Intn(40)
		bound = float64(bins) // one bin per integer distance, as the paper does
	} else {
		bins = 1 + rng.Intn(120)
		bound = 0.25 + 4*rng.Float64()
	}
	n := 1 + rng.Intn(2000)
	samples := make([]float64, n)
	switch rng.Intn(3) {
	case 0: // uniform over the full range
		for i := range samples {
			samples[i] = rng.Float64() * bound
		}
	case 1: // clustered in a narrow band: most bins stay empty
		center := rng.Float64() * bound
		spread := bound / 20
		for i := range samples {
			samples[i] = math.Min(math.Max(center+spread*(rng.Float64()-0.5), 0), bound)
		}
	default: // point mass
		v := rng.Float64() * bound
		for i := range samples {
			samples[i] = v
		}
	}
	if discrete {
		for i := range samples {
			samples[i] = math.Round(samples[i])
		}
	}
	h, err := FromSamples(samples, bins, bound, discrete)
	if err != nil {
		panic(err)
	}
	return h
}

// TestCDFProperties checks that every generated histogram's CDF behaves
// like a distribution function: 0 below the support, 1 at the bound,
// and monotonically non-decreasing throughout.
func TestCDFProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		h := randomHistogram(rng)
		if got := h.CDF(-0.5); got != 0 {
			t.Fatalf("trial %d: CDF(-0.5) = %g, want 0", trial, got)
		}
		if got := h.CDF(h.Bound()); got != 1 {
			t.Fatalf("trial %d: CDF(bound) = %g, want 1", trial, got)
		}
		if got := h.CDF(h.Bound() * 2); got != 1 {
			t.Fatalf("trial %d: CDF(2*bound) = %g, want 1", trial, got)
		}
		prev := 0.0
		for i := 0; i <= 400; i++ {
			x := h.Bound() * float64(i) / 400
			v := h.CDF(x)
			if v < prev {
				t.Fatalf("trial %d: CDF not monotone: F(%g)=%g < F(prev)=%g", trial, x, v, prev)
			}
			if v < 0 || v > 1 {
				t.Fatalf("trial %d: CDF(%g)=%g outside [0,1]", trial, x, v)
			}
			prev = v
		}
	}
}

// TestQuantileRoundTrip checks the Galois connection between F and
// F^-1: Quantile(p) is the smallest x with F(x) >= p, so
// F(Quantile(p)) >= p must hold for every p, with near-equality for
// continuous histograms whose CDF is strictly increasing. Quantile must
// also be monotone in p.
func TestQuantileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		h := randomHistogram(rng)
		prevQ := 0.0
		for i := 1; i <= 100; i++ {
			p := float64(i) / 100
			q := h.Quantile(p)
			if q < prevQ {
				t.Fatalf("trial %d: Quantile not monotone: F^-1(%g)=%g < %g", trial, p, q, prevQ)
			}
			prevQ = q
			if q < 0 || q > h.Bound() {
				t.Fatalf("trial %d: Quantile(%g)=%g outside [0,%g]", trial, p, q, h.Bound())
			}
			if f := h.CDF(q); f < p-1e-9 {
				t.Fatalf("trial %d: F(F^-1(%g)) = %g < p (q=%g, discrete=%v)",
					trial, p, f, q, h.Discrete())
			}
		}
	}
}

// TestQuantileRoundTripTight checks the stronger property on a
// continuous histogram with every bin populated: there the CDF is
// strictly increasing and piecewise linear, so F(F^-1(q)) == q up to
// floating-point error.
func TestQuantileRoundTripTight(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const bins = 50
	samples := make([]float64, 0, bins*20)
	for b := 0; b < bins; b++ {
		for j := 0; j < 1+rng.Intn(30); j++ {
			samples = append(samples, (float64(b)+0.5)/bins)
		}
	}
	h, err := FromSamples(samples, bins, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 1000; i++ {
		p := float64(i) / 1000
		if f := h.CDF(h.Quantile(p)); math.Abs(f-p) > 1e-12 {
			t.Fatalf("F(F^-1(%g)) = %g, |diff| = %g", p, f, math.Abs(f-p))
		}
	}
}

// TestPDFIntegratesToOneProperty integrates the piecewise-constant
// density with a per-bin trapezoid rule (sampling the density at an
// interior point of each bin, exact for a function constant within
// bins) and requires total mass 1 on every randomly generated shape —
// strengthening the single-case TestPDFIntegratesToOne.
func TestPDFIntegratesToOneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		h := randomHistogram(rng)
		width := h.Bound() / float64(h.Bins())
		var mass float64
		for i := 0; i < h.Bins(); i++ {
			mid := (float64(i) + 0.5) * width
			mass += h.PDF(mid) * width
		}
		if math.Abs(mass-1) > 1e-9 {
			t.Fatalf("trial %d: density integrates to %g, want 1 (bins=%d, bound=%g, discrete=%v)",
				trial, mass, h.Bins(), h.Bound(), h.Discrete())
		}
		if h.PDF(-0.1) != 0 || h.PDF(h.Bound()) != 0 || h.PDF(h.Bound()+1) != 0 {
			t.Fatalf("trial %d: PDF nonzero outside support", trial)
		}
	}
}

// TestCDFPDFConsistency verifies the fundamental theorem on bin edges:
// for continuous histograms, F(edge_{i+1}) - F(edge_i) equals the bin's
// density times its width.
func TestCDFPDFConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		h := randomHistogram(rng)
		if h.Discrete() {
			continue
		}
		width := h.Bound() / float64(h.Bins())
		for i := 0; i < h.Bins(); i++ {
			lo := float64(i) * width
			hi := h.Edge(i)
			dF := h.CDF(hi) - h.CDF(lo)
			area := h.PDF(lo+width/2) * width
			if math.Abs(dF-area) > 1e-9 {
				t.Fatalf("trial %d bin %d: dF=%g but pdf*width=%g", trial, i, dF, area)
			}
		}
	}
}

// TestQuantileMinimality pins the generalized-inverse definition
// F⁻¹(p) = inf{x : F(x) ≥ p} on random shapes: F(Q(p)) ≥ p always, and
// any x strictly below Q(p) (by more than float noise) has F(x) < p —
// i.e. Q(p) really is the smallest such point, so flat CDF segments
// resolve to their left end.
func TestQuantileMinimality(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		h := randomHistogram(rng)
		eps := h.Bound() * 1e-7
		for i := 1; i < 100; i++ {
			p := float64(i) / 100
			q := h.Quantile(p)
			if f := h.CDF(q); f < p-1e-9 {
				t.Fatalf("trial %d: F(Q(%g)) = %g < p", trial, p, f)
			}
			if q > eps {
				below := h.CDF(q - eps)
				// For discrete histograms F is a step function: just left
				// of a jump F sits strictly below p unless p falls on a
				// flat run, which Quantile resolves to the jump point, so
				// the strict inequality must still hold.
				if below >= p+1e-9 {
					t.Fatalf("trial %d: Q(%g)=%g not minimal: F(q-eps)=%g >= p (discrete=%v)",
						trial, p, q, below, h.Discrete())
				}
			}
		}
	}
}

// TestQuantileZeroIsSupportEdge pins the p ≤ 0 convention on random
// shapes: Quantile(0) is the bottom of the support — the largest x with
// F(x) = 0 for continuous histograms (left edge of the first nonempty
// bin), the first mass-carrying distance for discrete ones. The pre-fix
// code returned 0 unconditionally, which lies below the support
// whenever leading bins are empty (e.g. every clustered shape).
func TestQuantileZeroIsSupportEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		h := randomHistogram(rng)
		q0 := h.Quantile(0)
		if qn := h.Quantile(-rng.Float64()); qn != q0 {
			t.Fatalf("trial %d: Quantile(p<0)=%g != Quantile(0)=%g", trial, qn, q0)
		}
		width := h.Bound() / float64(h.Bins())
		if h.Discrete() {
			// q0 is a jump point with positive mass and nothing below it.
			if h.CDF(q0) <= 0 {
				t.Fatalf("trial %d: discrete Quantile(0)=%g carries no mass", trial, q0)
			}
			if q0 >= width && h.CDF(q0-width) != 0 {
				t.Fatalf("trial %d: discrete Quantile(0)=%g has mass below it", trial, q0)
			}
			continue
		}
		// Continuous: F(q0) = 0 (up to interpolation noise at the bin
		// edge) and F is positive just past q0 — the CDF starts rising
		// inside the first nonempty bin.
		if f := h.CDF(q0); f > 1e-9 {
			t.Fatalf("trial %d: F(Quantile(0)=%g) = %g, want 0", trial, q0, f)
		}
		if f := h.CDF(q0 + width); f <= 0 {
			t.Fatalf("trial %d: no mass just past Quantile(0)=%g", trial, q0)
		}
		// Monotone continuation: Quantile(p) for small p > 0 never falls
		// below the support edge.
		if q := h.Quantile(1e-12); q < q0-1e-12 {
			t.Fatalf("trial %d: Quantile(1e-12)=%g < Quantile(0)=%g", trial, q, q0)
		}
	}
}

// TestQuantileFlatSegments builds a CDF with an exactly flat interior
// run (empty bins between two point masses) and checks that quantiles
// at the flat level resolve to the left end of the run, and that
// quantiles just above it land past the gap.
func TestQuantileFlatSegments(t *testing.T) {
	// 10 bins over [0,1]; mass 0.5 in bin 1 (0.15) and 0.5 in bin 7
	// (0.75): F is 0 on bin 0, rises to 0.5 across bin 1, flat at 0.5
	// over bins 2..6, rises to 1 across bin 7, flat at 1 after.
	samples := []float64{0.15, 0.75}
	h := mustFromSamples(t, samples, 10, 1, false)
	// p = 0.5 sits on the flat run; the infimum of {x : F(x) >= 0.5} is
	// the top of bin 1 where F first reaches 0.5.
	if got := h.Quantile(0.5); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Quantile(0.5) = %g, want 0.2 (left end of flat run)", got)
	}
	// Just above the flat level the quantile jumps past the gap into
	// bin 7.
	if got := h.Quantile(0.5 + 1e-9); got < 0.7 {
		t.Errorf("Quantile(0.5+eps) = %g, want >= 0.7 (past the flat run)", got)
	}
	// p = 0 resolves to the left edge of bin 1, the support's bottom.
	if got := h.Quantile(0); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Quantile(0) = %g, want 0.1", got)
	}
}

// TestQuantileDiscreteSteps pins the step-CDF inversion on a known
// discrete shape: quantiles land exactly on the integer distances where
// F jumps, and every p within one step maps to the same distance.
func TestQuantileDiscreteSteps(t *testing.T) {
	// Distances 2 (x4) and 5 (x6) over 5 unit bins: F(2)=0.4, F(5)=1,
	// F flat elsewhere.
	samples := []float64{2, 2, 2, 2, 5, 5, 5, 5, 5, 5}
	h := mustFromSamples(t, samples, 5, 5, true)
	for _, tc := range []struct{ p, want float64 }{
		{0, 2},    // support bottom: first distance with mass
		{0.1, 2},  // inside the first step
		{0.4, 2},  // exactly at the step level
		{0.41, 5}, // just above: next jump
		{0.9, 5},
		{1, 5}, // p=1 pins to bound, which coincides with the top jump
	} {
		if got := h.Quantile(tc.p); got != tc.want {
			t.Errorf("discrete Quantile(%g) = %g, want %g", tc.p, got, tc.want)
		}
	}
}
