package histogram

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustFromSamples(t *testing.T, samples []float64, bins int, bound float64, discrete bool) *Histogram {
	t.Helper()
	h, err := FromSamples(samples, bins, bound, discrete)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1, false); err == nil {
		t.Error("bins=0 accepted")
	}
	if _, err := New(10, 0, false); err == nil {
		t.Error("bound=0 accepted")
	}
	if _, err := New(10, math.Inf(1), false); err == nil {
		t.Error("bound=inf accepted")
	}
	if _, err := New(10, math.NaN(), false); err == nil {
		t.Error("bound=NaN accepted")
	}
	if _, err := FromSamples(nil, 10, 1, false); err == nil {
		t.Error("empty samples accepted")
	}
}

func TestCDFEndpoints(t *testing.T) {
	h := mustFromSamples(t, []float64{0.1, 0.5, 0.9}, 10, 1, false)
	if got := h.CDF(-0.5); got != 0 {
		t.Errorf("CDF(-0.5) = %g, want 0", got)
	}
	if got := h.CDF(0); got != 0 {
		t.Errorf("CDF(0) = %g, want 0", got)
	}
	if got := h.CDF(1); got != 1 {
		t.Errorf("CDF(1) = %g, want 1", got)
	}
	if got := h.CDF(2); got != 1 {
		t.Errorf("CDF(2) = %g, want 1", got)
	}
}

func TestCDFUniformSamples(t *testing.T) {
	// 1000 uniform samples: CDF should approximate identity.
	rng := rand.New(rand.NewSource(1))
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = rng.Float64()
	}
	h := mustFromSamples(t, samples, 100, 1, false)
	for _, x := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		if got := h.CDF(x); math.Abs(got-x) > 0.05 {
			t.Errorf("CDF(%g) = %g, want ~%g", x, got, x)
		}
	}
}

func TestCDFMonotoneQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = rng.Float64() * 3
	}
	h := mustFromSamples(t, samples, 60, 3, false)
	f := func(a, b float64) bool {
		x := math.Abs(math.Mod(a, 3))
		y := math.Abs(math.Mod(b, 3))
		if x > y {
			x, y = y, x
		}
		return h.CDF(x) <= h.CDF(y)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileInvertsCDFQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	samples := make([]float64, 2000)
	for i := range samples {
		samples[i] = rng.ExpFloat64()
		if samples[i] > 5 {
			samples[i] = 5
		}
	}
	h := mustFromSamples(t, samples, 100, 5, false)
	f := func(p float64) bool {
		p = math.Abs(math.Mod(p, 1))
		x := h.Quantile(p)
		// F(F^-1(p)) >= p with tolerance, and F^-1 is a quantile: F just
		// below x is <= p.
		return h.CDF(x) >= p-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileEndpoints(t *testing.T) {
	// Samples {0.2, 0.6} over 10 bins of width 0.1: the support starts
	// at bin 1 (0.2 sits on the edge, so it falls in [0.1, 0.2]).
	// Quantile(p <= 0) is the left edge of the support, 0.1 — NOT 0,
	// which lies below every sample. This is the regression test for
	// the p=0 convention: the pre-fix code returned 0 unconditionally.
	h := mustFromSamples(t, []float64{0.2, 0.6}, 10, 1, false)
	if got := h.Quantile(0); got != 0.1 {
		t.Errorf("Quantile(0) = %g, want 0.1 (left edge of first nonempty bin)", got)
	}
	if got := h.Quantile(1); got != 1 {
		t.Errorf("Quantile(1) = %g, want bound", got)
	}
	if got := h.Quantile(-0.1); got != 0.1 {
		t.Errorf("Quantile(-0.1) = %g, want 0.1", got)
	}
	if got := h.Quantile(1.5); got != 1 {
		t.Errorf("Quantile(1.5) = %g", got)
	}
	// A sample in the first bin anchors the support at 0.
	h0 := mustFromSamples(t, []float64{0.05, 0.6}, 10, 1, false)
	if got := h0.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) with mass in bin 0 = %g, want 0", got)
	}
}

func TestDiscreteCDFSteps(t *testing.T) {
	// Edit-like distances: integers 1..5 with known multiplicity.
	samples := []float64{1, 1, 2, 3, 3, 3, 4, 5, 5, 5}
	h := mustFromSamples(t, samples, 5, 5, true)
	// F(1)=0.2, F(2)=0.3, F(3)=0.6, F(4)=0.7, F(5)=1.
	want := map[float64]float64{1: 0.2, 2: 0.3, 3: 0.6, 4: 0.7, 5: 1}
	for x, w := range want {
		if got := h.CDF(x); math.Abs(got-w) > 1e-12 {
			t.Errorf("discrete CDF(%g) = %g, want %g", x, got, w)
		}
	}
	// Between integers the step function holds its value.
	if got := h.CDF(2.7); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("discrete CDF(2.7) = %g, want 0.3", got)
	}
	if got := h.CDF(0.5); got != 0 {
		t.Errorf("discrete CDF(0.5) = %g, want 0", got)
	}
}

func TestDiscreteQuantile(t *testing.T) {
	samples := []float64{1, 1, 2, 3, 3, 3, 4, 5, 5, 5}
	h := mustFromSamples(t, samples, 5, 5, true)
	if got := h.Quantile(0.2); got != 1 {
		t.Errorf("Quantile(0.2) = %g, want 1", got)
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Errorf("Quantile(0.5) = %g, want 3", got)
	}
	if got := h.Quantile(0.95); got != 5 {
		t.Errorf("Quantile(0.95) = %g, want 5", got)
	}
}

func TestPDFIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = rng.Float64() * rng.Float64() * 2
	}
	h := mustFromSamples(t, samples, 40, 2, false)
	var integral float64
	steps := 4000
	dx := h.Bound() / float64(steps)
	for i := 0; i < steps; i++ {
		integral += h.PDF((float64(i)+0.5)*dx) * dx
	}
	if math.Abs(integral-1) > 1e-6 {
		t.Fatalf("PDF integrates to %g, want 1", integral)
	}
}

func TestMeanMatchesSampleMean(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	samples := make([]float64, 5000)
	var sum float64
	for i := range samples {
		samples[i] = rng.Float64()
		sum += samples[i]
	}
	h := mustFromSamples(t, samples, 100, 1, false)
	want := sum / float64(len(samples))
	if got := h.Mean(); math.Abs(got-want) > 0.01 {
		t.Fatalf("Mean = %g, want ~%g", got, want)
	}
}

func TestMeanDiscrete(t *testing.T) {
	samples := []float64{1, 2, 3, 4} // mean 2.5
	h := mustFromSamples(t, samples, 4, 4, true)
	if got := h.Mean(); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("discrete Mean = %g, want 2.5", got)
	}
}

func TestAccumulatorMatchesFromSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	samples := make([]float64, 1000)
	acc, err := NewAccumulator(50, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range samples {
		samples[i] = rng.Float64()
		acc.Add(samples[i])
	}
	if acc.N() != 1000 {
		t.Fatalf("N = %d", acc.N())
	}
	ha, err := acc.Histogram()
	if err != nil {
		t.Fatal(err)
	}
	hs := mustFromSamples(t, samples, 50, 1, false)
	for i := 0; i < 50; i++ {
		if ha.CumAt(i) != hs.CumAt(i) {
			t.Fatalf("bin %d: accumulator %g != batch %g", i, ha.CumAt(i), hs.CumAt(i))
		}
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	acc, err := NewAccumulator(10, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := acc.Histogram(); err == nil {
		t.Fatal("empty accumulator produced a histogram")
	}
}

func TestClampOutOfRangeSamples(t *testing.T) {
	h := mustFromSamples(t, []float64{-0.1, 1.2, 0.5}, 10, 1, false)
	if got := h.CDF(1); got != 1 {
		t.Fatalf("CDF(bound) = %g after clamped samples", got)
	}
	// The negative sample lands in bin 0, so F at the first edge is 1/3;
	// halfway through the bin the interpolated CDF is 1/6.
	if got := h.CDF(0.1); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("negative sample not clamped into first bin: CDF(0.1)=%g, want 1/3", got)
	}
}

func TestRebinned(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := make([]float64, 2000)
	for i := range samples {
		samples[i] = rng.Float64()
	}
	h := mustFromSamples(t, samples, 100, 1, false)
	r, err := h.Rebinned(10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bins() != 10 {
		t.Fatalf("Bins = %d", r.Bins())
	}
	for _, x := range []float64{0.1, 0.3, 0.7} {
		if diff := math.Abs(r.CDF(x) - h.CDF(x)); diff > 0.02 {
			t.Errorf("rebinned CDF(%g) differs by %g", x, diff)
		}
	}
}

func TestTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	samples := make([]float64, 2000)
	for i := range samples {
		samples[i] = rng.Float64() * 2
	}
	h := mustFromSamples(t, samples, 100, 2, false)
	tr, err := h.Truncated(1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Bound() != 1 {
		t.Fatalf("truncated bound = %g", tr.Bound())
	}
	denom := h.CDF(1)
	for _, x := range []float64{0.2, 0.5, 0.8} {
		want := h.CDF(x) / denom
		if got := tr.CDF(x); math.Abs(got-want) > 0.02 {
			t.Errorf("Truncated CDF(%g) = %g, want %g", x, got, want)
		}
	}
	if got := tr.CDF(1); got != 1 {
		t.Errorf("Truncated CDF at cap = %g, want 1", got)
	}
}

func TestTruncatedBadCap(t *testing.T) {
	h := mustFromSamples(t, []float64{0.5}, 10, 1, false)
	if _, err := h.Truncated(0); err == nil {
		t.Error("cap=0 accepted")
	}
	if _, err := h.Truncated(1.5); err == nil {
		t.Error("cap>bound accepted")
	}
}

func TestCloneIndependent(t *testing.T) {
	h := mustFromSamples(t, []float64{0.2, 0.8}, 4, 1, false)
	c := h.Clone()
	if c.CDF(0.5) != h.CDF(0.5) {
		t.Fatal("clone CDF differs")
	}
	c.cum[0] = 0.99
	if h.cum[0] == 0.99 {
		t.Fatal("clone shares storage")
	}
}

func TestEdgeValuesFallInLowerBin(t *testing.T) {
	// Sample exactly on a bin edge must not inflate the upper bin.
	h := mustFromSamples(t, []float64{0.5, 0.5}, 2, 1, false)
	if got := h.CDF(0.5); got != 1 {
		t.Fatalf("CDF(0.5) = %g, want 1 (edge samples belong to lower bin)", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	samples := make([]float64, 2000)
	for i := range samples {
		samples[i] = rng.Float64() * 3
	}
	h := mustFromSamples(t, samples, 60, 3, false)
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var got Histogram
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Bins() != h.Bins() || got.Bound() != h.Bound() || got.N() != h.N() || got.Discrete() != h.Discrete() {
		t.Fatalf("shape changed: %d/%g/%d", got.Bins(), got.Bound(), got.N())
	}
	for _, x := range []float64{0.1, 0.7, 1.5, 2.9} {
		if got.CDF(x) != h.CDF(x) {
			t.Fatalf("CDF(%g) changed: %g vs %g", x, got.CDF(x), h.CDF(x))
		}
	}
	// Discrete flavor too.
	hd := mustFromSamples(t, []float64{1, 2, 2, 3}, 3, 3, true)
	data, _ = json.Marshal(hd)
	var gd Histogram
	if err := json.Unmarshal(data, &gd); err != nil {
		t.Fatal(err)
	}
	if !gd.Discrete() || gd.CDF(2) != hd.CDF(2) {
		t.Fatal("discrete histogram corrupted")
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	cases := []string{
		`{"bound":1,"cum":[]}`,
		`{"bound":0,"cum":[1]}`,
		`{"bound":1,"cum":[0.9,0.5,1]}`,
		`{"bound":1,"cum":[0.5,0.9]}`,
		`{"bound":1,"cum":[0.5,1.5]}`,
		`not json`,
	}
	for i, c := range cases {
		var h Histogram
		if err := json.Unmarshal([]byte(c), &h); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestJSONQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = rng.Float64() * 2
		}
		h, err := FromSamples(samples, 1+rng.Intn(50), 2, false)
		if err != nil {
			return false
		}
		data, err := json.Marshal(h)
		if err != nil {
			return false
		}
		var got Histogram
		if err := json.Unmarshal(data, &got); err != nil {
			return false
		}
		for x := 0.0; x <= 2; x += 0.21 {
			if math.Abs(got.CDF(x)-h.CDF(x)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	samples := make([]float64, 10_000)
	for i := range samples {
		samples[i] = rng.Float64()
	}
	// One sequential accumulator vs four shards merged in a scrambled
	// order: the histograms must be bit-identical.
	whole, _ := NewAccumulator(50, 1, false)
	shards := make([]*Accumulator, 4)
	for i := range shards {
		shards[i], _ = NewAccumulator(50, 1, false)
	}
	for i, v := range samples {
		whole.Add(v)
		shards[i%len(shards)].Add(v)
	}
	merged := shards[2]
	for _, s := range []*Accumulator{shards[0], shards[3], shards[1]} {
		if err := merged.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	if merged.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", merged.N(), whole.N())
	}
	hw, err := whole.Histogram()
	if err != nil {
		t.Fatal(err)
	}
	hm, err := merged.Histogram()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < hw.Bins(); i++ {
		if hw.CumAt(i) != hm.CumAt(i) {
			t.Fatalf("bin %d: merged %v != sequential %v", i, hm.CumAt(i), hw.CumAt(i))
		}
	}
}

func TestAccumulatorMergeShapeMismatch(t *testing.T) {
	a, _ := NewAccumulator(10, 1, false)
	for _, bad := range []*Accumulator{
		func() *Accumulator { x, _ := NewAccumulator(20, 1, false); return x }(),
		func() *Accumulator { x, _ := NewAccumulator(10, 2, false); return x }(),
		func() *Accumulator { x, _ := NewAccumulator(10, 1, true); return x }(),
	} {
		if err := a.Merge(bad); err == nil {
			t.Fatal("shape mismatch accepted")
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var all []float64
	var parts []*Histogram
	for p := 0; p < 3; p++ {
		n := 1000 + rng.Intn(2000)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = rng.Float64() * 3
		}
		all = append(all, samples...)
		h, err := FromSamples(samples, 40, 3, false)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, h)
	}
	want, err := FromSamples(all, 40, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Merge(parts...)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != want.N() {
		t.Fatalf("merged N = %d, want %d", got.N(), want.N())
	}
	for i := 0; i < want.Bins(); i++ {
		if got.CumAt(i) != want.CumAt(i) {
			t.Fatalf("bin %d: merged %v != direct %v", i, got.CumAt(i), want.CumAt(i))
		}
	}
}

func TestHistogramMergeErrors(t *testing.T) {
	if _, err := Merge(); err == nil {
		t.Fatal("empty merge accepted")
	}
	a, _ := FromSamples([]float64{0.5}, 10, 1, false)
	b, _ := FromSamples([]float64{0.5}, 10, 2, false)
	if _, err := Merge(a, b); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}
