package histogram

import (
	"encoding/json"
	"errors"
	"fmt"
)

// histogramJSON is the stable wire format: the cumulative fractions at
// the bin edges plus the shape parameters.
type histogramJSON struct {
	Bound    float64   `json:"bound"`
	Discrete bool      `json:"discrete"`
	N        int64     `json:"n"`
	Cum      []float64 `json:"cum"`
}

// MarshalJSON implements json.Marshaler.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{
		Bound:    h.bound,
		Discrete: h.discrete,
		N:        h.total,
		Cum:      h.cum,
	})
}

// UnmarshalJSON implements json.Unmarshaler, validating the payload: the
// cumulative sequence must be non-decreasing within [0,1] and end at 1.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var j histogramJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if len(j.Cum) == 0 {
		return errors.New("histogram: empty cum array")
	}
	if !(j.Bound > 0) {
		return fmt.Errorf("histogram: invalid bound %v", j.Bound)
	}
	prev := 0.0
	for i, c := range j.Cum {
		if c < prev-1e-12 || c < 0 || c > 1+1e-12 {
			return fmt.Errorf("histogram: cum[%d]=%v breaks monotonicity", i, c)
		}
		prev = c
	}
	if last := j.Cum[len(j.Cum)-1]; last < 1-1e-9 || last > 1+1e-9 {
		return fmt.Errorf("histogram: cum must end at 1, got %v", j.Cum[len(j.Cum)-1])
	}
	h.bound = j.Bound
	h.discrete = j.Discrete
	h.total = j.N
	h.width = j.Bound / float64(len(j.Cum))
	h.cum = append([]float64(nil), j.Cum...)
	h.cum[len(h.cum)-1] = 1
	return nil
}
