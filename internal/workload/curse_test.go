package workload

import (
	"testing"

	"mcost/internal/dataset"
)

// TestCurseWorkloadValidatesAcrossSentinels checks the mix builder
// handles every crossover sentinel the advisor can emit: a real radius,
// "tree always wins" (-1), "tree loses everywhere" (0), and a bogus
// crossover past the bound.
func TestCurseWorkloadValidatesAcrossSentinels(t *testing.T) {
	for _, cross := range []float64{0.3, -1, 0, 2.5} {
		w := Curse(cross, 1.0, 5000)
		if err := w.Validate(); err != nil {
			t.Fatalf("Curse(%g): %v", cross, err)
		}
		if len(w.Classes) != 5 {
			t.Fatalf("Curse(%g): %d classes", cross, len(w.Classes))
		}
		for _, c := range w.Classes {
			if c.K == 0 && (c.Radius <= 0 || c.Radius > 1.0) {
				t.Fatalf("Curse(%g): class %s radius %g outside (0, bound]", cross, c.Name, c.Radius)
			}
		}
	}
	if k := Curse(0.3, 1, 3).Classes[4].K; k != 1 {
		t.Fatalf("tiny dataset deep-k = %d, want clamp to 1", k)
	}
}

// TestCurseApportioning pins largest-remainder apportionment over the
// curse mix's weights (4:2:1:2:1). 23 queries split as exact shares
// 9.2, 4.6, 2.3, 4.6, 2.3 — floors assign 21, and the two leftovers go
// to the largest remainders (the two .6 classes).
func TestCurseApportioning(t *testing.T) {
	w := Curse(0.3, 1.0, 5000)
	weights := make([]float64, len(w.Classes))
	for i, c := range w.Classes {
		weights[i] = c.Weight
	}
	counts, err := apportion(weights, 23)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{9, 5, 2, 5, 2}
	sum := 0
	for i, c := range counts {
		sum += c
		if c != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
	if sum != 23 {
		t.Fatalf("counts sum to %d, want 23", sum)
	}
	// Every class executes even when the total barely covers the mix.
	counts, err = apportion(weights, len(weights))
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c < 1 {
			t.Fatalf("class %d starved: counts = %v", i, counts)
		}
	}
}

// TestCurseRunsEndToEnd executes the curse mix against a real tree so
// the class radii and ks are known-valid engine inputs.
func TestCurseRunsEndToEnd(t *testing.T) {
	tr, model, d := fixture(t)
	pool := dataset.PaperClusteredQueries(100, 8, 1101).Queries
	w := Curse(0.4, d.Space.Bound, d.N())
	rep, err := Run(tr, model, w, pool, Options{Queries: 40, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Classes) != 5 {
		t.Fatalf("%d class reports", len(rep.Classes))
	}
	total := 0
	for _, cr := range rep.Classes {
		total += cr.Queries
		if cr.Queries < 1 {
			t.Fatalf("class %s never executed", cr.Class.Name)
		}
		if cr.Measured.Dists <= 0 {
			t.Fatalf("class %s measured no distance computations", cr.Class.Name)
		}
	}
	if total != 40 {
		t.Fatalf("executed %d queries, want exactly 40", total)
	}
}
