package workload

import (
	"math"
	"testing"

	"mcost/internal/core"
	"mcost/internal/dataset"
	"mcost/internal/distdist"
	"mcost/internal/mtree"
)

func fixture(t *testing.T) (*mtree.Tree, *core.MTreeModel, *dataset.Dataset) {
	t.Helper()
	d := dataset.PaperClustered(3000, 8, 1101)
	tr, err := mtree.New(mtree.Options{Space: d.Space, PageSize: 2048, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad(d.Objects); err != nil {
		t.Fatal(err)
	}
	st, err := tr.CollectStats()
	if err != nil {
		t.Fatal(err)
	}
	f, err := distdist.Estimate(d, distdist.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.NewMTreeModel(f, st)
	if err != nil {
		t.Fatal(err)
	}
	return tr, model, d
}

func testMix() *Workload {
	return &Workload{Classes: []QueryClass{
		{Name: "lookup", Weight: 6, K: 1},
		{Name: "similar-10", Weight: 3, K: 10},
		{Name: "discovery", Weight: 1, Radius: 0.25},
	}}
}

func TestValidate(t *testing.T) {
	if err := (&Workload{}).Validate(); err == nil {
		t.Error("empty workload accepted")
	}
	bad := &Workload{Classes: []QueryClass{{Name: "x", Weight: 0, Radius: 1}}}
	if err := bad.Validate(); err == nil {
		t.Error("zero weight accepted")
	}
	bad2 := &Workload{Classes: []QueryClass{{Name: "x", Weight: 1, K: -1}}}
	if err := bad2.Validate(); err == nil {
		t.Error("negative k accepted")
	}
	bad3 := &Workload{Classes: []QueryClass{{Name: "x", Weight: 1, Radius: -2}}}
	if err := bad3.Validate(); err == nil {
		t.Error("negative radius accepted")
	}
	if err := testMix().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunPredictionsTrackMeasurement(t *testing.T) {
	tr, model, _ := fixture(t)
	pool := dataset.PaperClusteredQueries(300, 8, 1101).Queries
	rep, err := Run(tr, model, testMix(), pool, Options{Queries: 240, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Classes) != 3 {
		t.Fatalf("got %d class reports", len(rep.Classes))
	}
	total := 0
	for _, cr := range rep.Classes {
		total += cr.Queries
		if cr.Measured.Nodes <= 0 || cr.Measured.Dists <= 0 {
			t.Fatalf("%s: empty measurement", cr.Class.Name)
		}
		if cr.Pred.Nodes <= 0 {
			t.Fatalf("%s: empty prediction", cr.Class.Name)
		}
	}
	if total < 230 || total > 250 {
		t.Fatalf("executed %d queries, want ~240", total)
	}
	// The weighted prediction tracks the measurement (no pruning, so
	// dists should agree well).
	if e := math.Abs(rep.PredPerQuery.Dists-rep.MeasuredPerQuery.Dists) / rep.MeasuredPerQuery.Dists; e > 0.35 {
		t.Fatalf("per-query dists: pred %.1f vs measured %.1f (%.0f%%)",
			rep.PredPerQuery.Dists, rep.MeasuredPerQuery.Dists, e*100)
	}
	if e := math.Abs(rep.PredPerQuery.Nodes-rep.MeasuredPerQuery.Nodes) / rep.MeasuredPerQuery.Nodes; e > 0.35 {
		t.Fatalf("per-query nodes: pred %.1f vs measured %.1f", rep.PredPerQuery.Nodes, rep.MeasuredPerQuery.Nodes)
	}
	if rep.PredMSPerQuery <= 0 || rep.MeasuredMSPerQuery <= 0 {
		t.Fatal("zero millisecond projections")
	}
}

func TestRunWithPruningMeasuresBelowPrediction(t *testing.T) {
	tr, model, _ := fixture(t)
	pool := dataset.PaperClusteredQueries(300, 8, 1101).Queries
	rep, err := Run(tr, model, testMix(), pool, Options{Queries: 120, Seed: 4, UseParentDist: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeasuredPerQuery.Dists >= rep.PredPerQuery.Dists {
		t.Fatalf("pruned measurement %.1f not below prediction %.1f",
			rep.MeasuredPerQuery.Dists, rep.PredPerQuery.Dists)
	}
}

func TestRunErrors(t *testing.T) {
	tr, model, _ := fixture(t)
	pool := dataset.PaperClusteredQueries(10, 8, 1101).Queries
	if _, err := Run(tr, model, &Workload{}, pool, Options{}); err == nil {
		t.Error("invalid workload accepted")
	}
	if _, err := Run(tr, model, testMix(), nil, Options{}); err == nil {
		t.Error("empty query pool accepted")
	}
}
