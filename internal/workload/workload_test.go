package workload

import (
	"math"
	"testing"

	"mcost/internal/core"
	"mcost/internal/dataset"
	"mcost/internal/distdist"
	"mcost/internal/mtree"
)

func fixture(t *testing.T) (*mtree.Tree, *core.MTreeModel, *dataset.Dataset) {
	t.Helper()
	d := dataset.PaperClustered(3000, 8, 1101)
	tr, err := mtree.New(mtree.Options{Space: d.Space, PageSize: 2048, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad(d.Objects); err != nil {
		t.Fatal(err)
	}
	st, err := tr.CollectStats()
	if err != nil {
		t.Fatal(err)
	}
	f, err := distdist.Estimate(d, distdist.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.NewMTreeModel(f, st)
	if err != nil {
		t.Fatal(err)
	}
	return tr, model, d
}

func testMix() *Workload {
	return &Workload{Classes: []QueryClass{
		{Name: "lookup", Weight: 6, K: 1},
		{Name: "similar-10", Weight: 3, K: 10},
		{Name: "discovery", Weight: 1, Radius: 0.25},
	}}
}

func TestValidate(t *testing.T) {
	if err := (&Workload{}).Validate(); err == nil {
		t.Error("empty workload accepted")
	}
	bad := &Workload{Classes: []QueryClass{{Name: "x", Weight: 0, Radius: 1}}}
	if err := bad.Validate(); err == nil {
		t.Error("zero weight accepted")
	}
	bad2 := &Workload{Classes: []QueryClass{{Name: "x", Weight: 1, K: -1}}}
	if err := bad2.Validate(); err == nil {
		t.Error("negative k accepted")
	}
	bad3 := &Workload{Classes: []QueryClass{{Name: "x", Weight: 1, Radius: -2}}}
	if err := bad3.Validate(); err == nil {
		t.Error("negative radius accepted")
	}
	if err := testMix().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunPredictionsTrackMeasurement(t *testing.T) {
	tr, model, _ := fixture(t)
	pool := dataset.PaperClusteredQueries(300, 8, 1101).Queries
	rep, err := Run(tr, model, testMix(), pool, Options{Queries: 240, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Classes) != 3 {
		t.Fatalf("got %d class reports", len(rep.Classes))
	}
	total := 0
	for _, cr := range rep.Classes {
		total += cr.Queries
		if cr.Measured.Nodes <= 0 || cr.Measured.Dists <= 0 {
			t.Fatalf("%s: empty measurement", cr.Class.Name)
		}
		if cr.Pred.Nodes <= 0 {
			t.Fatalf("%s: empty prediction", cr.Class.Name)
		}
	}
	if total < 230 || total > 250 {
		t.Fatalf("executed %d queries, want ~240", total)
	}
	// The weighted prediction tracks the measurement (no pruning, so
	// dists should agree well).
	if e := math.Abs(rep.PredPerQuery.Dists-rep.MeasuredPerQuery.Dists) / rep.MeasuredPerQuery.Dists; e > 0.35 {
		t.Fatalf("per-query dists: pred %.1f vs measured %.1f (%.0f%%)",
			rep.PredPerQuery.Dists, rep.MeasuredPerQuery.Dists, e*100)
	}
	if e := math.Abs(rep.PredPerQuery.Nodes-rep.MeasuredPerQuery.Nodes) / rep.MeasuredPerQuery.Nodes; e > 0.35 {
		t.Fatalf("per-query nodes: pred %.1f vs measured %.1f", rep.PredPerQuery.Nodes, rep.MeasuredPerQuery.Nodes)
	}
	if rep.PredMSPerQuery <= 0 || rep.MeasuredMSPerQuery <= 0 {
		t.Fatal("zero millisecond projections")
	}
}

func TestRunWithPruningMeasuresBelowPrediction(t *testing.T) {
	tr, model, _ := fixture(t)
	pool := dataset.PaperClusteredQueries(300, 8, 1101).Queries
	rep, err := Run(tr, model, testMix(), pool, Options{Queries: 120, Seed: 4, UseParentDist: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeasuredPerQuery.Dists >= rep.PredPerQuery.Dists {
		t.Fatalf("pruned measurement %.1f not below prediction %.1f",
			rep.MeasuredPerQuery.Dists, rep.PredPerQuery.Dists)
	}
}

func TestRunErrors(t *testing.T) {
	tr, model, _ := fixture(t)
	pool := dataset.PaperClusteredQueries(10, 8, 1101).Queries
	if _, err := Run(tr, model, &Workload{}, pool, Options{}); err == nil {
		t.Error("invalid workload accepted")
	}
	if _, err := Run(tr, model, testMix(), nil, Options{}); err == nil {
		t.Error("empty query pool accepted")
	}
}

// TestApportionSumsExactly pins the largest-remainder apportionment:
// per-class counts sum to exactly the requested total on adversarial
// weight mixes where the old round-half-up code over- or under-shot.
func TestApportionSumsExactly(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
		total   int
	}{
		// Four equal weights at 10 queries: 10/4 = 2.5 each, so
		// round-half-up gave 3+3+3+3 = 12 — the motivating regression.
		{"equal-halves", []float64{1, 1, 1, 1}, 10},
		{"equal-halves-6", []float64{1, 1, 1, 1, 1, 1}, 9},
		// A dominant class plus tiny ones: the tiny classes round to 0
		// and the min-1 fixup must pull queries from the big class.
		{"dominant", []float64{1000, 1, 1, 1}, 10},
		{"tiny-tail", []float64{0.5, 0.001, 0.001}, 5},
		// Repeating thirds never hit .5 but drift by accumulation.
		{"thirds", []float64{1, 1, 1}, 100},
		{"sevenths", []float64{1, 2, 4}, 50},
		{"skewed", []float64{0.9, 0.09, 0.009, 0.001}, 200},
		{"exact-min", []float64{5, 3, 2}, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			counts, err := apportion(tc.weights, tc.total)
			if err != nil {
				t.Fatal(err)
			}
			sum := 0
			for i, c := range counts {
				if c < 1 {
					t.Errorf("class %d got %d queries, want >= 1", i, c)
				}
				sum += c
			}
			if sum != tc.total {
				t.Fatalf("counts %v sum to %d, want exactly %d", counts, sum, tc.total)
			}
			// Sanity: no class overshoots its exact share by more than
			// 1 except through the min-1 fixup, which only removes.
			var wsum float64
			for _, w := range tc.weights {
				wsum += w
			}
			for i, c := range counts {
				exact := float64(tc.total) * tc.weights[i] / wsum
				if float64(c) > exact+1+1e-9 {
					t.Errorf("class %d got %d queries for exact share %.3f", i, c, exact)
				}
			}
		})
	}
}

func TestApportionErrors(t *testing.T) {
	if _, err := apportion([]float64{1, 1, 1}, 2); err == nil {
		t.Error("2 queries over 3 classes accepted")
	}
}

// TestRunQueryCountSumsExactly checks the apportionment end to end:
// the per-class query counts in the report sum to Options.Queries. The
// pre-fix rounding executed 12 queries for this 4-class/10-query mix.
func TestRunQueryCountSumsExactly(t *testing.T) {
	tr, model, _ := fixture(t)
	pool := dataset.PaperClusteredQueries(50, 8, 1101).Queries
	w := &Workload{Classes: []QueryClass{
		{Name: "a", Weight: 1, K: 1},
		{Name: "b", Weight: 1, K: 2},
		{Name: "c", Weight: 1, Radius: 0.1},
		{Name: "d", Weight: 1, Radius: 0.2},
	}}
	rep, err := Run(tr, model, w, pool, Options{Queries: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, cr := range rep.Classes {
		sum += cr.Queries
	}
	if sum != 10 {
		t.Fatalf("executed %d queries, want exactly 10", sum)
	}
}

// TestRunBatchedMatchesLoop runs the same workload per-query and in
// batches of 32: measured distance computations and result counts are
// identical (batching never changes a result) while node reads can
// only shrink.
func TestRunBatchedMatchesLoop(t *testing.T) {
	tr, model, _ := fixture(t)
	pool := dataset.PaperClusteredQueries(300, 8, 1101).Queries
	loop, err := Run(tr, model, testMix(), pool, Options{Queries: 96, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := Run(tr, model, testMix(), pool, Options{Queries: 96, Seed: 6, Batch: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := range loop.Classes {
		l, b := loop.Classes[i], batched.Classes[i]
		if l.Queries != b.Queries {
			t.Fatalf("%s: %d vs %d queries", l.Class.Name, l.Queries, b.Queries)
		}
		if l.Measured.Dists != b.Measured.Dists {
			t.Errorf("%s: dists %.2f (loop) vs %.2f (batch 32)", l.Class.Name, l.Measured.Dists, b.Measured.Dists)
		}
		if l.Results != b.Results {
			t.Errorf("%s: results %.2f vs %.2f", l.Class.Name, l.Results, b.Results)
		}
		if b.Measured.Nodes > l.Measured.Nodes {
			t.Errorf("%s: batched nodes %.2f exceed loop nodes %.2f", l.Class.Name, b.Measured.Nodes, l.Measured.Nodes)
		}
	}
}
