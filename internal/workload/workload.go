// Package workload runs mixed similarity-query workloads against an
// M-tree and scores the cost model's predictions — the capacity-planning
// use the paper motivates: estimate a workload's resource consumption
// from the model before provisioning, then verify against execution.
//
// A Workload is a list of weighted query classes (range radii and k-NN
// ks). The runner executes a sampled query stream, accumulates measured
// node reads and distance computations, and compares with the model's
// expectation for the same mix, including a wall-clock projection under
// configurable disk parameters.
package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"mcost/internal/core"
	"mcost/internal/metric"
	"mcost/internal/mtree"
)

// QueryClass is one component of the mix.
type QueryClass struct {
	// Name labels the class in reports ("lookup", "discovery", ...).
	Name string
	// Weight is the relative frequency of the class (any positive
	// scale; weights are normalized).
	Weight float64
	// Radius is the range-query radius; used when K == 0.
	Radius float64
	// K, when positive, makes this a k-NN class and Radius is ignored.
	K int
}

// Workload is a weighted mix of query classes.
type Workload struct {
	Classes []QueryClass
}

// Validate checks the mix.
func (w *Workload) Validate() error {
	if len(w.Classes) == 0 {
		return errors.New("workload: no query classes")
	}
	var total float64
	for i, c := range w.Classes {
		if c.Weight <= 0 {
			return fmt.Errorf("workload: class %d (%s) has weight %g", i, c.Name, c.Weight)
		}
		if c.K < 0 {
			return fmt.Errorf("workload: class %d (%s) has k = %d", i, c.Name, c.K)
		}
		if c.K == 0 && c.Radius < 0 {
			return fmt.Errorf("workload: class %d (%s) has radius %g", i, c.Name, c.Radius)
		}
		total += c.Weight
	}
	if total <= 0 {
		return errors.New("workload: zero total weight")
	}
	return nil
}

// ClassReport compares prediction and measurement for one class.
type ClassReport struct {
	Class    QueryClass
	Queries  int
	Pred     core.CostEstimate
	Measured core.CostEstimate // averages per query
	Results  float64           // average result-set size
}

// Report is the workload summary.
type Report struct {
	Classes []ClassReport
	// PredPerQuery and MeasuredPerQuery are the weight-averaged costs.
	PredPerQuery     core.CostEstimate
	MeasuredPerQuery core.CostEstimate
	// PredMSPerQuery / MeasuredMSPerQuery apply the disk parameters.
	PredMSPerQuery     float64
	MeasuredMSPerQuery float64
}

// Options configures a run.
type Options struct {
	// Queries is the number of executed queries (default 200),
	// apportioned to classes by weight.
	Queries int
	// Disk prices the combined cost (default core.PaperDiskParams).
	Disk core.DiskParams
	// Seed drives query sampling.
	Seed int64
	// UseParentDist runs the measured queries with the M-tree's
	// triangle-inequality optimization (default false, matching what
	// the model predicts; see the paper's footnote 2).
	UseParentDist bool
}

// Run executes the workload against the tree using queries drawn from
// queryPool (objects following the data distribution, per the biased
// query model) and scores the model's predictions.
func Run(tr *mtree.Tree, model *core.MTreeModel, w *Workload, queryPool []metric.Object, opt Options) (*Report, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if len(queryPool) == 0 {
		return nil, errors.New("workload: empty query pool")
	}
	if opt.Queries == 0 {
		opt.Queries = 200
	}
	if opt.Disk == (core.DiskParams{}) {
		opt.Disk = core.PaperDiskParams()
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	var totalWeight float64
	for _, c := range w.Classes {
		totalWeight += c.Weight
	}

	rep := &Report{}
	qopt := mtree.QueryOptions{UseParentDist: opt.UseParentDist}
	for _, c := range w.Classes {
		nq := int(float64(opt.Queries)*c.Weight/totalWeight + 0.5)
		if nq == 0 {
			nq = 1
		}
		var pred core.CostEstimate
		if c.K > 0 {
			pred = model.NNN(c.K)
		} else {
			pred = model.RangeN(c.Radius)
		}
		tr.ResetCounters()
		var results int
		for i := 0; i < nq; i++ {
			q := queryPool[rng.Intn(len(queryPool))]
			var (
				ms  []mtree.Match
				err error
			)
			if c.K > 0 {
				ms, err = tr.NN(q, c.K, qopt)
			} else {
				ms, err = tr.Range(q, c.Radius, qopt)
			}
			if err != nil {
				return nil, fmt.Errorf("workload: class %s: %w", c.Name, err)
			}
			results += len(ms)
		}
		measured := core.CostEstimate{
			Nodes: float64(tr.NodeReads()) / float64(nq),
			Dists: float64(tr.DistanceCount()) / float64(nq),
		}
		rep.Classes = append(rep.Classes, ClassReport{
			Class:    c,
			Queries:  nq,
			Pred:     pred,
			Measured: measured,
			Results:  float64(results) / float64(nq),
		})
		frac := c.Weight / totalWeight
		rep.PredPerQuery.Nodes += frac * pred.Nodes
		rep.PredPerQuery.Dists += frac * pred.Dists
		rep.MeasuredPerQuery.Nodes += frac * measured.Nodes
		rep.MeasuredPerQuery.Dists += frac * measured.Dists
	}
	rep.PredMSPerQuery = opt.Disk.TotalMS(rep.PredPerQuery, tr.PageSize())
	rep.MeasuredMSPerQuery = opt.Disk.TotalMS(rep.MeasuredPerQuery, tr.PageSize())
	return rep, nil
}
