// Package workload runs mixed similarity-query workloads against a
// query engine and scores a cost model's predictions — the
// capacity-planning use the paper motivates: estimate a workload's
// resource consumption from the model before provisioning, then verify
// against execution.
//
// A Workload is a list of weighted query classes (range radii and k-NN
// ks). The runner apportions a query count to the classes by weight
// (largest-remainder, so counts sum exactly to the requested total),
// executes a sampled query stream in batches, accumulates measured node
// reads and distance computations, and compares with the model's
// expectation for the same mix, including a wall-clock projection under
// configurable disk parameters. The engine behind the run is abstract:
// a single M-tree (Run) or anything implementing Engine, such as a
// sharded index (RunEngine).
package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"mcost/internal/core"
	"mcost/internal/metric"
	"mcost/internal/mtree"
)

// QueryClass is one component of the mix.
type QueryClass struct {
	// Name labels the class in reports ("lookup", "discovery", ...).
	Name string
	// Weight is the relative frequency of the class (any positive
	// scale; weights are normalized).
	Weight float64
	// Radius is the range-query radius; used when K == 0.
	Radius float64
	// K, when positive, makes this a k-NN class and Radius is ignored.
	K int
}

// Workload is a weighted mix of query classes.
type Workload struct {
	Classes []QueryClass
}

// Validate checks the mix.
func (w *Workload) Validate() error {
	if len(w.Classes) == 0 {
		return errors.New("workload: no query classes")
	}
	var total float64
	for i, c := range w.Classes {
		if c.Weight <= 0 {
			return fmt.Errorf("workload: class %d (%s) has weight %g", i, c.Name, c.Weight)
		}
		if c.K < 0 {
			return fmt.Errorf("workload: class %d (%s) has k = %d", i, c.Name, c.K)
		}
		if c.K == 0 && c.Radius < 0 {
			return fmt.Errorf("workload: class %d (%s) has radius %g", i, c.Name, c.Radius)
		}
		total += c.Weight
	}
	if total <= 0 {
		return errors.New("workload: zero total weight")
	}
	return nil
}

// ClassReport compares prediction and measurement for one class.
type ClassReport struct {
	Class    QueryClass
	Queries  int
	Pred     core.CostEstimate
	Measured core.CostEstimate // averages per query
	Results  float64           // average result-set size
}

// Report is the workload summary.
type Report struct {
	Classes []ClassReport
	// PredPerQuery and MeasuredPerQuery are the weight-averaged costs.
	PredPerQuery     core.CostEstimate
	MeasuredPerQuery core.CostEstimate
	// PredMSPerQuery / MeasuredMSPerQuery apply the disk parameters.
	PredMSPerQuery     float64
	MeasuredMSPerQuery float64
}

// Options configures a run.
type Options struct {
	// Queries is the number of executed queries (default 200),
	// apportioned to classes by weight. Must be at least the number of
	// classes so every class executes.
	Queries int
	// Batch groups the executed queries into batches of this size
	// (default 1, the classic per-query loop). Larger batches amortize
	// node reads through the engine's shared-traversal batch path
	// without changing any result.
	Batch int
	// Disk prices the combined cost (default core.PaperDiskParams).
	Disk core.DiskParams
	// Seed drives query sampling.
	Seed int64
	// UseParentDist runs the measured queries with the M-tree's
	// triangle-inequality optimization (default false, matching what
	// the model predicts; see the paper's footnote 2). It applies to
	// the tree engine behind Run; engines given to RunEngine own their
	// query options.
	UseParentDist bool
}

// Engine executes batches of similarity queries and meters their cost.
// *mtree.Tree (via Run) and mcost.ShardedIndex both satisfy it.
type Engine interface {
	RangeBatch(qs []metric.Object, radius float64) ([][]mtree.Match, error)
	NNBatch(qs []metric.Object, k int) ([][]mtree.Match, error)
	// Costs returns node reads and distance computations accumulated
	// since ResetCosts.
	Costs() (nodeReads, distCalcs int64)
	ResetCosts()
	// PageSize prices a node read for the wall-clock projection.
	PageSize() int
}

// Predictor supplies the cost model's expectation for each query class.
type Predictor interface {
	PredictRange(radius float64) core.CostEstimate
	PredictNN(k int) core.CostEstimate
}

// apportion distributes total among the classes proportionally to
// weights using the largest-remainder method, so the counts sum to
// exactly total and every class gets at least one query. Ties in the
// fractional remainders break toward the lower class index.
func apportion(weights []float64, total int) ([]int, error) {
	if total < len(weights) {
		return nil, fmt.Errorf("workload: %d queries cannot cover %d classes", total, len(weights))
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	counts := make([]int, len(weights))
	type rem struct {
		i    int
		frac float64
	}
	rems := make([]rem, len(weights))
	assigned := 0
	for i, w := range weights {
		exact := float64(total) * w / sum
		counts[i] = int(exact)
		rems[i] = rem{i: i, frac: exact - float64(counts[i])}
		assigned += counts[i]
	}
	sort.SliceStable(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for j := 0; assigned < total; j, assigned = (j+1)%len(rems), assigned+1 {
		counts[rems[j].i]++
	}
	// Largest-remainder can still leave a tiny-weight class at zero;
	// move one query from the largest class until every class runs.
	for i := range counts {
		if counts[i] > 0 {
			continue
		}
		biggest := 0
		for j := range counts {
			if counts[j] > counts[biggest] {
				biggest = j
			}
		}
		counts[biggest]--
		counts[i]++
	}
	return counts, nil
}

// treeEngine adapts a single M-tree to Engine.
type treeEngine struct {
	tr   *mtree.Tree
	qopt mtree.QueryOptions
}

func (e treeEngine) RangeBatch(qs []metric.Object, radius float64) ([][]mtree.Match, error) {
	return e.tr.RangeBatch(qs, radius, e.qopt)
}

func (e treeEngine) NNBatch(qs []metric.Object, k int) ([][]mtree.Match, error) {
	return e.tr.NNBatch(qs, k, e.qopt)
}

func (e treeEngine) Costs() (int64, int64) { return e.tr.NodeReads(), e.tr.DistanceCount() }
func (e treeEngine) ResetCosts()           { e.tr.ResetCounters() }
func (e treeEngine) PageSize() int         { return e.tr.PageSize() }

// modelPredictor adapts the N-MCM to Predictor.
type modelPredictor struct{ m *core.MTreeModel }

func (p modelPredictor) PredictRange(radius float64) core.CostEstimate { return p.m.RangeN(radius) }
func (p modelPredictor) PredictNN(k int) core.CostEstimate             { return p.m.NNN(k) }

// Run executes the workload against the tree using queries drawn from
// queryPool (objects following the data distribution, per the biased
// query model) and scores the model's predictions.
func Run(tr *mtree.Tree, model *core.MTreeModel, w *Workload, queryPool []metric.Object, opt Options) (*Report, error) {
	eng := treeEngine{tr: tr, qopt: mtree.QueryOptions{UseParentDist: opt.UseParentDist}}
	return RunEngine(eng, modelPredictor{m: model}, w, queryPool, opt)
}

// RunEngine executes the workload against any Engine and scores the
// Predictor's expectations. Queries are sampled per class from
// queryPool, executed in batches of opt.Batch, and metered through the
// engine's counters.
func RunEngine(eng Engine, pred Predictor, w *Workload, queryPool []metric.Object, opt Options) (*Report, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if len(queryPool) == 0 {
		return nil, errors.New("workload: empty query pool")
	}
	if opt.Queries == 0 {
		opt.Queries = 200
	}
	if opt.Batch <= 0 {
		opt.Batch = 1
	}
	if opt.Disk == (core.DiskParams{}) {
		opt.Disk = core.PaperDiskParams()
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	weights := make([]float64, len(w.Classes))
	var totalWeight float64
	for i, c := range w.Classes {
		weights[i] = c.Weight
		totalWeight += c.Weight
	}
	counts, err := apportion(weights, opt.Queries)
	if err != nil {
		return nil, err
	}

	rep := &Report{}
	for ci, c := range w.Classes {
		nq := counts[ci]
		var p core.CostEstimate
		if c.K > 0 {
			p = pred.PredictNN(c.K)
		} else {
			p = pred.PredictRange(c.Radius)
		}
		qs := make([]metric.Object, nq)
		for i := range qs {
			qs[i] = queryPool[rng.Intn(len(queryPool))]
		}
		eng.ResetCosts()
		var results int
		for lo := 0; lo < nq; lo += opt.Batch {
			hi := lo + opt.Batch
			if hi > nq {
				hi = nq
			}
			var (
				sets [][]mtree.Match
				err  error
			)
			if c.K > 0 {
				sets, err = eng.NNBatch(qs[lo:hi], c.K)
			} else {
				sets, err = eng.RangeBatch(qs[lo:hi], c.Radius)
			}
			if err != nil {
				return nil, fmt.Errorf("workload: class %s: %w", c.Name, err)
			}
			for _, ms := range sets {
				results += len(ms)
			}
		}
		reads, dists := eng.Costs()
		measured := core.CostEstimate{
			Nodes: float64(reads) / float64(nq),
			Dists: float64(dists) / float64(nq),
		}
		rep.Classes = append(rep.Classes, ClassReport{
			Class:    c,
			Queries:  nq,
			Pred:     p,
			Measured: measured,
			Results:  float64(results) / float64(nq),
		})
		frac := c.Weight / totalWeight
		rep.PredPerQuery.Nodes += frac * p.Nodes
		rep.PredPerQuery.Dists += frac * p.Dists
		rep.MeasuredPerQuery.Nodes += frac * measured.Nodes
		rep.MeasuredPerQuery.Dists += frac * measured.Dists
	}
	rep.PredMSPerQuery = opt.Disk.TotalMS(rep.PredPerQuery, eng.PageSize())
	rep.MeasuredMSPerQuery = opt.Disk.TotalMS(rep.MeasuredPerQuery, eng.PageSize())
	return rep, nil
}
