package workload

import "fmt"

// Curse builds the curse-walking query mix for a dataset whose hardness
// profile puts the tree/scan cost crossover at crossoverRadius (the
// advisor's Profile.CrossoverRadius; negative when the tree wins across
// the whole metric bound, 0 when it loses everywhere). The mix
// straddles the breakdown point on purpose: range classes below, at,
// and above the crossover, plus a point-lookup and a deep k-NN class,
// so a run exercises both regimes of the planner and the
// largest-remainder apportionment covers tiny-weight classes.
//
// bound is the metric's d+ and n the dataset size; when the crossover
// sentinel carries no usable radius the range radii fall back to fixed
// fractions of the bound.
func Curse(crossoverRadius, bound float64, n int) *Workload {
	below, at, above := bound/8, bound/2, bound
	if crossoverRadius > 0 && crossoverRadius < bound {
		below = crossoverRadius / 2
		at = crossoverRadius
		above = crossoverRadius + (bound-crossoverRadius)/2
	}
	deepK := n / 10
	if deepK < 1 {
		deepK = 1
	}
	return &Workload{Classes: []QueryClass{
		{Name: fmt.Sprintf("below-crossover-r%.3g", below), Weight: 4, Radius: below},
		{Name: fmt.Sprintf("at-crossover-r%.3g", at), Weight: 2, Radius: at},
		{Name: fmt.Sprintf("past-crossover-r%.3g", above), Weight: 1, Radius: above},
		{Name: "nn-lookup", Weight: 2, K: 1},
		{Name: fmt.Sprintf("nn-deep-k%d", deepK), Weight: 1, K: deepK},
	}}
}
