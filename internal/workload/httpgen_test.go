package workload

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"mcost/internal/metric"
)

// stubServer answers the wire API with scripted responses so the
// generator's counting is testable without a real index.
func stubServer(t *testing.T, handler http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/range", handler)
	mux.HandleFunc("/v1/nn", handler)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func testPool() []metric.Object {
	return []metric.Object{metric.Vector{0.1, 0.2}, metric.Vector{0.7, 0.4}}
}

func TestRunHTTPCountsResponseKinds(t *testing.T) {
	var n atomic.Int64
	ts := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
		// Cycle: ok, partial, shed, error.
		switch n.Add(1) % 4 {
		case 1:
			json.NewEncoder(w).Encode(map[string]interface{}{
				"matches": []map[string]interface{}{{"oid": 1, "distance": 0.05}},
			})
		case 2:
			json.NewEncoder(w).Encode(map[string]interface{}{
				"matches": []map[string]interface{}{}, "partial": true, "degraded": "budget_exceeded",
			})
		case 3:
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]interface{}{
				"code": "overloaded", "retry_after_ms": 500,
			})
		default:
			w.WriteHeader(http.StatusInternalServerError)
		}
	})
	w := &Workload{Classes: []QueryClass{{Name: "r", Weight: 1, Radius: 0.2}}}
	rep, err := RunHTTP(ts.URL, w, testPool(), HTTPOptions{
		Requests: 40, Workers: 1, Seed: 1, Backoff: true, MaxBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 40 {
		t.Fatalf("requests = %d, want 40", rep.Requests)
	}
	if rep.OK != 10 || rep.Partial != 10 || rep.Shed != 10 || rep.Errors != 10 {
		t.Fatalf("counts wrong: %+v", rep)
	}
	if rep.OK+rep.Partial+rep.Shed+rep.Errors != rep.Requests {
		t.Fatalf("kinds do not partition the requests: %+v", rep)
	}
	// Backoff honored the 429s, capped at MaxBackoff each.
	if rep.BackoffTotal != 10*time.Millisecond {
		t.Fatalf("backoff total %v, want capped 10ms", rep.BackoffTotal)
	}
}

func TestRunHTTPFlagsOutOfRadiusMatches(t *testing.T) {
	ts := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]interface{}{
			"matches": []map[string]interface{}{
				{"oid": 1, "distance": 0.1}, // fine
				{"oid": 2, "distance": 0.9}, // beyond radius 0.2
			},
		})
	})
	w := &Workload{Classes: []QueryClass{{Name: "r", Weight: 1, Radius: 0.2}}}
	rep, err := RunHTTP(ts.URL, w, testPool(), HTTPOptions{Requests: 5, Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Invalid != 5 {
		t.Fatalf("invalid = %d, want one per request (5): %+v", rep.Invalid, rep)
	}
}

func TestRunHTTPSendsBothEndpoints(t *testing.T) {
	var ranges, nns atomic.Int64
	ts := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Query  json.RawMessage `json:"query"`
			Radius *float64        `json:"radius"`
			K      *int            `json:"k"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil || len(body.Query) == 0 {
			t.Errorf("malformed generator request: %v", err)
		}
		switch r.URL.Path {
		case "/v1/range":
			if body.Radius == nil || body.K != nil {
				t.Errorf("range request with wrong params")
			}
			ranges.Add(1)
		case "/v1/nn":
			if body.K == nil || body.Radius != nil {
				t.Errorf("nn request with wrong params")
			}
			nns.Add(1)
		}
		json.NewEncoder(w).Encode(map[string]interface{}{"matches": []interface{}{}})
	})
	w := &Workload{Classes: []QueryClass{
		{Name: "r", Weight: 1, Radius: 0.2},
		{Name: "k", Weight: 1, K: 3},
	}}
	rep, err := RunHTTP(ts.URL, w, testPool(), HTTPOptions{Requests: 20, Workers: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 20 || ranges.Load() != 10 || nns.Load() != 10 {
		t.Fatalf("split wrong: ok=%d ranges=%d nns=%d", rep.OK, ranges.Load(), nns.Load())
	}
}

func TestRunHTTPValidatesInput(t *testing.T) {
	w := &Workload{Classes: []QueryClass{{Name: "r", Weight: 1, Radius: 0.2}}}
	if _, err := RunHTTP("http://x", w, nil, HTTPOptions{}); err == nil {
		t.Fatal("empty query pool must be rejected")
	}
	if _, err := RunHTTP("http://x", &Workload{}, testPool(), HTTPOptions{}); err == nil {
		t.Fatal("empty workload must be rejected")
	}
}
