package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mcost/internal/metric"
)

// Closed-loop HTTP load generation against the mcost-serve wire API.
// The same weighted query mix the in-process runner executes is driven
// through POST /v1/range and /v1/nn: each worker keeps exactly one
// request in flight (closed loop — offered load tracks service rate),
// shed responses are counted and optionally honored with the server's
// retry_after_ms backoff, and every range result is validated against
// its radius so a degraded server can never silently return garbage.
// The generator speaks the wire JSON shapes directly rather than
// importing the server package: it is a client, and a layering cycle
// with the server's own tests is not worth a shared struct.

// HTTPOptions configures a closed-loop HTTP run.
type HTTPOptions struct {
	// Requests is the total number of requests to issue (default 200),
	// apportioned to the workload's classes by weight.
	Requests int
	// Workers is the closed-loop concurrency (default 4): each worker
	// holds one request in flight.
	Workers int
	// Seed drives class shuffling and query sampling.
	Seed int64
	// ZipfS, when > 1, samples queries from the pool with a Zipf
	// distribution of this exponent instead of uniformly: low pool
	// indices repeat often, the shape of real similarity traffic and
	// the regime a result cache is built for. 0 (or anything ≤ 1)
	// keeps uniform sampling.
	ZipfS float64
	// InsertFrac diverts this fraction of Requests to POST /v1/insert,
	// writing objects sampled from the query pool (0 = read-only run).
	InsertFrac float64
	// DeleteFrac diverts this fraction of Requests to POST /v1/delete,
	// targeting OIDs this run inserted earlier (a delete drawn before
	// any insert has landed falls back to an insert, so the run never
	// deletes objects it does not own). InsertFrac+DeleteFrac must be
	// at most 1.
	DeleteFrac float64
	// Backoff honors the retry_after_ms of a 429 before the worker's
	// next request (the shed request itself is not retried). Capped by
	// MaxBackoff.
	Backoff bool
	// MaxBackoff caps one backoff sleep (default 100ms).
	MaxBackoff time.Duration
	// Client issues the requests (default http.DefaultClient).
	Client *http.Client
}

// HTTPReport summarizes a closed-loop HTTP run.
type HTTPReport struct {
	// Requests is the number issued; it always equals OK + Partial +
	// Shed + Errors.
	Requests int
	// OK counts complete 200 responses, Partial the budget- or
	// deadline-degraded 200s, Shed the typed 429s.
	OK, Partial, Shed int
	// Degraded counts 200 responses a scatter-gather router marked
	// shard-degraded ("degraded": true with shards_failed) — results
	// missing one or more failed shards. Orthogonal to the OK/Partial
	// split: a degraded response still counts in OK or Partial, so the
	// Requests identity holds.
	Degraded int
	// Errors counts transport failures and any other status.
	Errors int
	// Invalid counts range responses carrying a match beyond the
	// requested radius — always zero against a correct server, degraded
	// or not.
	Invalid int
	// CacheHits counts 200 responses the server marked as served from
	// its result cache.
	CacheHits int
	// Inserts and Deletes count acknowledged writes. Requests equals
	// OK + Partial + Shed + Errors + Inserts + Deletes on mixed runs.
	Inserts, Deletes int
	// BackoffTotal is the time spent honoring retry_after_ms.
	BackoffTotal time.Duration
}

// wire shapes (client-side view of the server's JSON).
type wireMatch struct {
	OID      uint64  `json:"oid"`
	Distance float64 `json:"distance"`
}

type wireQueryResponse struct {
	Matches []wireMatch `json:"matches"`
	Partial bool        `json:"partial"`
	Cached  bool        `json:"cached"`
	// Degraded is a bool on the router's wire (shard-level loss) and a
	// cause string on a node's (budget/deadline), so it stays raw here
	// and degradedFlag interprets it.
	Degraded json.RawMessage `json:"degraded"`
}

// degradedFlag reports whether a raw "degraded" field marks a
// router-style shard-degraded response (boolean true). Node-style cause
// strings ride with "partial": true and are already counted as Partial.
func degradedFlag(raw json.RawMessage) bool {
	return string(raw) == "true"
}

type wireErrorResponse struct {
	Code         string `json:"code"`
	RetryAfterMS int64  `json:"retry_after_ms"`
}

type wireInsertResponse struct {
	OID uint64 `json:"oid"`
}

// httpRequest is one planned request of the run.
type httpRequest struct {
	class QueryClass
	q     metric.Object
	kind  int // reqQuery, reqInsert, or reqDelete
}

const (
	reqQuery = iota
	reqInsert
	reqDelete
)

// insertedObj remembers one acknowledged insert so a later delete can
// target it (the server verifies the object against the OID).
type insertedObj struct {
	oid uint64
	obj metric.Object
}

// oidStack is the run's shared pool of deletable objects.
type oidStack struct {
	mu sync.Mutex
	s  []insertedObj
}

func (s *oidStack) push(oid uint64, obj metric.Object) {
	s.mu.Lock()
	s.s = append(s.s, insertedObj{oid: oid, obj: obj})
	s.mu.Unlock()
}

func (s *oidStack) pop() (insertedObj, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.s) == 0 {
		return insertedObj{}, false
	}
	it := s.s[len(s.s)-1]
	s.s = s.s[:len(s.s)-1]
	return it, true
}

// RunHTTP drives the workload against the serving API at baseURL (no
// trailing slash, e.g. "http://localhost:8080") and reports what came
// back. Queries are sampled from queryPool per class, exactly as the
// in-process runner samples them.
func RunHTTP(baseURL string, w *Workload, queryPool []metric.Object, opt HTTPOptions) (*HTTPReport, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if len(queryPool) == 0 {
		return nil, fmt.Errorf("workload: empty query pool")
	}
	if opt.Requests == 0 {
		opt.Requests = 200
	}
	if opt.Workers <= 0 {
		opt.Workers = 4
	}
	if opt.MaxBackoff <= 0 {
		opt.MaxBackoff = 100 * time.Millisecond
	}
	client := opt.Client
	if client == nil {
		client = http.DefaultClient
	}

	if opt.InsertFrac < 0 || opt.DeleteFrac < 0 || opt.InsertFrac+opt.DeleteFrac > 1 {
		return nil, fmt.Errorf("workload: mutation mix insert=%g delete=%g out of range", opt.InsertFrac, opt.DeleteFrac)
	}
	nIns := int(opt.InsertFrac*float64(opt.Requests) + 0.5)
	nDel := int(opt.DeleteFrac*float64(opt.Requests) + 0.5)
	reads := opt.Requests - nIns - nDel

	weights := make([]float64, len(w.Classes))
	for i, c := range w.Classes {
		weights[i] = c.Weight
	}
	counts, err := apportion(weights, reads)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	sample := func() metric.Object { return queryPool[rng.Intn(len(queryPool))] }
	if opt.ZipfS > 1 {
		zipf := rand.NewZipf(rng, opt.ZipfS, 1, uint64(len(queryPool)-1))
		sample = func() metric.Object { return queryPool[zipf.Uint64()] }
	}
	plan := make([]httpRequest, 0, opt.Requests)
	for ci, n := range counts {
		for j := 0; j < n; j++ {
			plan = append(plan, httpRequest{
				class: w.Classes[ci],
				q:     sample(),
			})
		}
	}
	for j := 0; j < nIns; j++ {
		plan = append(plan, httpRequest{kind: reqInsert, q: sample()})
	}
	for j := 0; j < nDel; j++ {
		// The sampled object is the fallback insert payload when no
		// earlier insert of this run is available to delete yet.
		plan = append(plan, httpRequest{kind: reqDelete, q: sample()})
	}
	rng.Shuffle(len(plan), func(i, j int) { plan[i], plan[j] = plan[j], plan[i] })

	var (
		next  atomic.Int64
		mu    sync.Mutex
		rep   HTTPReport
		wg    sync.WaitGroup
		stack oidStack
	)
	for wk := 0; wk < opt.Workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(plan) {
					return
				}
				res := issue(client, baseURL, plan[i], &stack)
				sleep := res.backoff
				if !opt.Backoff || sleep <= 0 {
					sleep = 0
				} else if sleep > opt.MaxBackoff {
					sleep = opt.MaxBackoff
				}
				mu.Lock()
				rep.Requests++
				rep.OK += res.ok
				rep.Partial += res.partial
				rep.Shed += res.shed
				rep.Errors += res.errs
				rep.Invalid += res.invalid
				rep.CacheHits += res.cached
				rep.Degraded += res.degraded
				rep.Inserts += res.inserts
				rep.Deletes += res.deletes
				rep.BackoffTotal += sleep
				mu.Unlock()
				if sleep > 0 {
					time.Sleep(sleep)
				}
			}
		}()
	}
	wg.Wait()
	return &rep, nil
}

// issueResult is one request's contribution to the report.
type issueResult struct {
	ok, partial, shed, errs, invalid, cached int
	degraded                                 int
	inserts, deletes                         int
	backoff                                  time.Duration
}

func issue(client *http.Client, baseURL string, r httpRequest, stack *oidStack) issueResult {
	switch r.kind {
	case reqInsert:
		return issueInsert(client, baseURL, r.q, stack)
	case reqDelete:
		if it, ok := stack.pop(); ok {
			return issueDelete(client, baseURL, it)
		}
		// Nothing of ours to delete yet: keep the write pressure up with
		// the fallback insert instead.
		return issueInsert(client, baseURL, r.q, stack)
	}
	var (
		path string
		body map[string]interface{}
	)
	if r.class.K > 0 {
		path = baseURL + "/v1/nn"
		body = map[string]interface{}{"query": r.q, "k": r.class.K}
	} else {
		path = baseURL + "/v1/range"
		body = map[string]interface{}{"query": r.q, "radius": r.class.Radius}
	}
	raw, err := json.Marshal(body)
	if err != nil {
		return issueResult{errs: 1}
	}
	resp, err := client.Post(path, "application/json", bytes.NewReader(raw))
	if err != nil {
		return issueResult{errs: 1}
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return issueResult{errs: 1}
	}
	switch resp.StatusCode {
	case http.StatusOK:
		var qr wireQueryResponse
		if err := json.Unmarshal(payload, &qr); err != nil {
			return issueResult{errs: 1}
		}
		var out issueResult
		if qr.Partial {
			out.partial = 1
		} else {
			out.ok = 1
		}
		if qr.Cached {
			out.cached = 1
		}
		if degradedFlag(qr.Degraded) {
			out.degraded = 1
		}
		if r.class.K == 0 {
			// Degraded or not, a range response may only contain true
			// matches.
			for _, m := range qr.Matches {
				if m.Distance > r.class.Radius {
					out.invalid++
				}
			}
		}
		return out
	case http.StatusTooManyRequests:
		var er wireErrorResponse
		if err := json.Unmarshal(payload, &er); err != nil || er.Code != "overloaded" {
			return issueResult{errs: 1}
		}
		return issueResult{shed: 1, backoff: time.Duration(er.RetryAfterMS) * time.Millisecond}
	default:
		return issueResult{errs: 1}
	}
}

// issueInsert posts one object to /v1/insert and records the returned
// OID so a later delete of this run can target it.
func issueInsert(client *http.Client, baseURL string, obj metric.Object, stack *oidStack) issueResult {
	raw, err := json.Marshal(map[string]interface{}{"object": obj})
	if err != nil {
		return issueResult{errs: 1}
	}
	resp, err := client.Post(baseURL+"/v1/insert", "application/json", bytes.NewReader(raw))
	if err != nil {
		return issueResult{errs: 1}
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return issueResult{errs: 1}
	}
	var ir wireInsertResponse
	if err := json.Unmarshal(payload, &ir); err != nil {
		return issueResult{errs: 1}
	}
	stack.push(ir.OID, obj)
	return issueResult{inserts: 1}
}

// issueDelete posts one previously-inserted object to /v1/delete.
func issueDelete(client *http.Client, baseURL string, it insertedObj) issueResult {
	raw, err := json.Marshal(map[string]interface{}{"object": it.obj, "oid": it.oid})
	if err != nil {
		return issueResult{errs: 1}
	}
	resp, err := client.Post(baseURL+"/v1/delete", "application/json", bytes.NewReader(raw))
	if err != nil {
		return issueResult{errs: 1}
	}
	defer resp.Body.Close()
	if _, err := io.ReadAll(resp.Body); err != nil || resp.StatusCode != http.StatusOK {
		return issueResult{errs: 1}
	}
	return issueResult{deletes: 1}
}
