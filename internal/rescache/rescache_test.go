package rescache_test

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"mcost"
	"mcost/internal/dataset"
	"mcost/internal/metric"
	"mcost/internal/mtree"
	"mcost/internal/rescache"
)

// bigEst is a prediction large enough that the cost gate never stops a
// probe — tests that assert hits must not depend on the gate's tuning.
var bigEst = mcost.CostEstimate{Nodes: 1e6, Dists: 1e6}

// lineDist is a 1-D L1 metric over float64 objects, for hand-built
// geometry tests.
func lineDist(a, b metric.Object) float64 {
	return math.Abs(a.(float64) - b.(float64))
}

func newCache(t *testing.T, cfg rescache.Config) *rescache.Cache {
	t.Helper()
	c, err := rescache.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidates(t *testing.T) {
	if _, err := rescache.New(rescache.Config{Entries: 0, Dist: lineDist}); err == nil {
		t.Fatal("Entries=0 must be rejected")
	}
	if _, err := rescache.New(rescache.Config{Entries: 10}); err == nil {
		t.Fatal("nil Dist must be rejected")
	}
}

func TestRangeContainmentGeometry(t *testing.T) {
	c := newCache(t, rescache.Config{Entries: 8, Shards: 1, Dist: lineDist})
	// Cached ball: center 0, radius 2, objects at 1 and -1.5.
	cached := []mtree.Match{
		{Object: 1.0, OID: 1, Distance: 1.0},
		{Object: -1.5, OID: 2, Distance: 1.5},
	}
	c.PutRange(0.0, 2.0, cached, bigEst)

	// d(Q,Q') + r = 0.5 + 1.5 = 2.0 ≤ 2.0: contained (closed ball).
	pr := c.GetRange(0.5, 1.5, bigEst)
	if !pr.Hit {
		t.Fatal("contained query must hit")
	}
	// Only the object at 1 is within 1.5 of 0.5.
	if len(pr.Matches) != 1 || pr.Matches[0].OID != 1 || pr.Matches[0].Distance != 0.5 {
		t.Fatalf("filtered matches wrong: %+v", pr.Matches)
	}

	// d(Q,Q') + r = 0.6 + 1.5 > 2.0: not provably contained.
	if pr := c.GetRange(0.6, 1.5, bigEst); pr.Hit {
		t.Fatal("non-contained query must miss")
	}
	// A wider query than the cached ball can never be contained.
	if pr := c.GetRange(0.0, 2.5, bigEst); pr.Hit {
		t.Fatal("wider query must miss")
	}
}

func TestRangeFilterPreservesSupersetOrder(t *testing.T) {
	c := newCache(t, rescache.Config{Entries: 8, Shards: 1, Dist: lineDist})
	// Emission order is the engine's (tree DFS), not distance order —
	// the filter must keep it.
	cached := []mtree.Match{
		{Object: 1.8, OID: 7, Distance: 1.8},
		{Object: 0.2, OID: 3, Distance: 0.2},
		{Object: -1.0, OID: 5, Distance: 1.0},
	}
	c.PutRange(0.0, 2.0, cached, bigEst)
	pr := c.GetRange(0.0, 1.0, bigEst)
	if !pr.Hit || len(pr.Matches) != 2 {
		t.Fatalf("probe: %+v", pr)
	}
	if pr.Matches[0].OID != 3 || pr.Matches[1].OID != 5 {
		t.Fatalf("filter reordered the superset: %+v", pr.Matches)
	}
}

// TestNNOpenBallStrictness pins the k-NN-sourced entry semantics: a
// top-k set only verifies the OPEN ball of its k-th distance, so a
// probe whose k-th filtered distance lands exactly on the boundary must
// miss — an unseen boundary tie could exist. The same geometry against
// a range-sourced (closed) entry hits.
func TestNNOpenBallStrictness(t *testing.T) {
	c := newCache(t, rescache.Config{Entries: 8, Shards: 1, Dist: lineDist})
	matches := []mtree.Match{
		{Object: 1.0, OID: 1, Distance: 1.0},
		{Object: 2.0, OID: 2, Distance: 2.0},
	}
	c.PutNN(0.0, 2, matches, bigEst) // open ball, radius 2

	// q=0.5: filtered dk = 1.5 == radius − dqq = 1.5 → boundary → miss.
	if pr := c.GetNN(0.5, 2, bigEst); pr.Hit {
		t.Fatalf("open-ball boundary must miss, got %+v", pr.Matches)
	}
	// k-NN entries never serve range queries (wrong order contract).
	if pr := c.GetRange(0.0, 1.5, bigEst); pr.Hit {
		t.Fatal("k-NN-sourced entry must not serve range queries")
	}

	// The same set cached as a closed range ball proves the same probe.
	c.Reset()
	c.PutRange(0.0, 2.0, matches, bigEst)
	pr := c.GetNN(0.5, 2, bigEst)
	if !pr.Hit {
		t.Fatal("closed-ball boundary must hit")
	}
	if len(pr.Matches) != 2 || pr.Matches[0].Distance != 0.5 || pr.Matches[1].Distance != 1.5 {
		t.Fatalf("NN from range superset wrong: %+v", pr.Matches)
	}
}

func TestNNExactRepeatAndPrefix(t *testing.T) {
	c := newCache(t, rescache.Config{Entries: 8, Shards: 1, Dist: lineDist})
	matches := []mtree.Match{
		{Object: 0.5, OID: 1, Distance: 0.5},
		{Object: -1.0, OID: 2, Distance: 1.0},
		{Object: 2.0, OID: 3, Distance: 2.0},
	}
	c.PutNN(0.0, 3, matches, bigEst)
	pr := c.GetNN(0.0, 3, bigEst)
	if !pr.Hit || len(pr.Matches) != 3 || pr.Dists != 1 {
		t.Fatalf("exact repeat must hit for one distance: %+v", pr)
	}
	// A smaller k is a prefix of the canonical stored answer.
	pr = c.GetNN(0.0, 2, bigEst)
	if !pr.Hit || len(pr.Matches) != 2 || pr.Matches[1].OID != 2 {
		t.Fatalf("prefix probe wrong: %+v", pr)
	}
	// A larger k cannot be served.
	if pr := c.GetNN(0.0, 4, bigEst); pr.Hit {
		t.Fatal("k beyond the stored set must miss")
	}
}

func TestCostGateStopsProbing(t *testing.T) {
	c := newCache(t, rescache.Config{Entries: 8, Shards: 1, Dist: lineDist})
	c.PutRange(0.0, 2.0, []mtree.Match{{Object: 1.0, OID: 1, Distance: 1.0}}, bigEst)
	// A zero prediction buys zero probe distances: even an exact repeat
	// must fall through without spending anything.
	pr := c.GetRange(0.0, 2.0, mcost.CostEstimate{})
	if pr.Hit || pr.Dists != 0 {
		t.Fatalf("zero prediction must skip the probe entirely: %+v", pr)
	}
	st := c.Stats()
	if st.Misses != 1 || st.ProbeDists != 0 {
		t.Fatalf("stats after gated miss: %+v", st)
	}
}

func TestPutRejections(t *testing.T) {
	c := newCache(t, rescache.Config{Entries: 8, Shards: 1, MaxRadius: 1.5, Dist: lineDist})
	m := []mtree.Match{{Object: 1.0, OID: 1, Distance: 1.0}}
	c.PutRange(0.0, 2.0, m, bigEst)                                            // over MaxRadius
	c.PutRange(0.0, -1, m, bigEst)                                             // negative radius
	c.PutNN(0.0, 2, m, bigEst)                                                 // fewer matches than k
	c.PutNN(0.0, 1, []mtree.Match{{Object: 0.0, OID: 1, Distance: 0}}, bigEst) // zero k-th distance
	if n := c.Len(); n != 0 {
		t.Fatalf("all rejected puts must leave the cache empty, got %d entries", n)
	}
	c.PutRange(0.0, 1.0, m, bigEst)
	if n := c.Len(); n != 1 {
		t.Fatalf("in-bounds put must land, got %d entries", n)
	}
}

func TestPutReplacesIdenticalBall(t *testing.T) {
	c := newCache(t, rescache.Config{Entries: 8, Shards: 1, Dist: lineDist})
	m := []mtree.Match{{Object: 1.0, OID: 1, Distance: 1.0}}
	c.PutRange(0.0, 2.0, m, bigEst)
	c.PutRange(0.0, 2.0, m, bigEst) // a miss storm double-put
	if n := c.Len(); n != 1 {
		t.Fatalf("identical ball must replace, not duplicate: %d entries", n)
	}
	c.PutRange(0.0, 1.0, m, bigEst) // different radius: a distinct ball
	if n := c.Len(); n != 2 {
		t.Fatalf("distinct radius is a distinct entry: %d entries", n)
	}
}

func TestEvictionPrefersCheapEntries(t *testing.T) {
	c := newCache(t, rescache.Config{Entries: 2, Shards: 1, Dist: lineDist})
	cheap := []mtree.Match{{Object: 10.0, OID: 1, Distance: 0.5}}
	costly := []mtree.Match{{Object: 20.0, OID: 2, Distance: 0.5}}
	c.PutRange(10.0, 1.0, cheap, mcost.CostEstimate{Nodes: 1, Dists: 1})
	c.PutRange(20.0, 1.0, costly, mcost.CostEstimate{Nodes: 500, Dists: 500})
	// The costly entry is older after this probe bumps it — pure LRU
	// would evict it anyway; cost-weighted eviction must not.
	if pr := c.GetRange(10.0, 1.0, bigEst); !pr.Hit {
		t.Fatal("cheap entry should hit before eviction")
	}
	c.PutRange(30.0, 1.0, []mtree.Match{{Object: 30.0, OID: 3, Distance: 0}}, bigEst)
	if pr := c.GetRange(20.0, 1.0, bigEst); !pr.Hit {
		t.Fatal("eviction removed the entry whose hits save the most traversal cost")
	}
	if pr := c.GetRange(10.0, 1.0, bigEst); pr.Hit {
		t.Fatal("the cheap entry should have been the victim")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestReset(t *testing.T) {
	c := newCache(t, rescache.Config{Entries: 8, Shards: 2, Dist: lineDist})
	c.PutRange(0.0, 1.0, []mtree.Match{{Object: 0.5, OID: 1, Distance: 0.5}}, bigEst)
	c.PutRange(5.0, 1.0, []mtree.Match{{Object: 5.5, OID: 2, Distance: 0.5}}, bigEst)
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("Reset must drop every entry")
	}
	if pr := c.GetRange(0.0, 1.0, bigEst); pr.Hit {
		t.Fatal("probe after Reset must miss")
	}
}

func TestConcurrentProbesAndPuts(t *testing.T) {
	c := newCache(t, rescache.Config{Entries: 32, Shards: 4, Dist: lineDist})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				center := float64(i % 10)
				c.PutRange(center, 1.0, []mtree.Match{{Object: center, OID: uint64(i), Distance: 0}}, bigEst)
				c.GetRange(center, 0.5, bigEst)
				c.GetNN(center, 1, bigEst)
			}
		}(w)
	}
	wg.Wait()
	if got, max := c.Len(), 32; got > max {
		t.Fatalf("cache exceeded capacity: %d > %d", got, max)
	}
}

// engineUnderTest is the serving-path query surface shared by the
// single-tree and sharded engines.
type engineUnderTest interface {
	RangeBatchTraced(ctx context.Context, qs []mcost.Object, radius float64, b mcost.QueryBudget, tr *mcost.QueryTrace) ([][]mcost.Match, error)
	NNBatchTraced(ctx context.Context, qs []mcost.Object, k int, b mcost.QueryBudget, tr *mcost.QueryTrace) ([][]mcost.Match, error)
	PriceRange(radius float64) mcost.CostEstimate
	PriceNN(k int) mcost.CostEstimate
	Space() *mcost.Space
}

func directRange(t *testing.T, eng engineUnderTest, q mcost.Object, radius float64) []mcost.Match {
	t.Helper()
	sets, err := eng.RangeBatchTraced(context.Background(), []mcost.Object{q}, radius, mcost.QueryBudget{}, nil)
	if err != nil {
		t.Fatalf("direct range: %v", err)
	}
	return sets[0]
}

func directNN(t *testing.T, eng engineUnderTest, q mcost.Object, k int) []mcost.Match {
	t.Helper()
	sets, err := eng.NNBatchTraced(context.Background(), []mcost.Object{q}, k, mcost.QueryBudget{}, nil)
	if err != nil {
		t.Fatalf("direct NN: %v", err)
	}
	return sets[0]
}

// assertBitIdentical fails unless got and want agree match by match on
// OID and the exact float64 bits of the distance.
func assertBitIdentical(t *testing.T, label string, got, want []mcost.Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: cache served %d matches, direct execution %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].OID != want[i].OID ||
			math.Float64bits(got[i].Distance) != math.Float64bits(want[i].Distance) {
			t.Fatalf("%s: match %d diverges: cache (%d, %x) direct (%d, %x)",
				label, i, got[i].OID, math.Float64bits(got[i].Distance),
				want[i].OID, math.Float64bits(want[i].Distance))
		}
	}
}

// TestEquivalenceMatrix is the exactness contract, end to end: across
// uniform/clustered vector datasets (Lp) and a word dataset
// (Levenshtein), sharded and not, every cache hit — exact repeats,
// narrower-radius containment, off-center containment, NN from range
// supersets, NN prefixes — must be bit-identical to running the query
// directly through the engine.
func TestEquivalenceMatrix(t *testing.T) {
	type dsCase struct {
		name string
		ds   *dataset.Dataset
	}
	datasets := []dsCase{
		{"uniform", dataset.Uniform(400, 4, 11)},
		{"clustered", dataset.PaperClustered(400, 4, 12)},
		{"words", dataset.Words(400, 13)},
	}
	for _, dc := range datasets {
		for _, shards := range []int{1, 3} {
			t.Run(fmt.Sprintf("%s/shards=%d", dc.name, shards), func(t *testing.T) {
				var eng engineUnderTest
				opt := mcost.Options{Seed: 5, Workers: 1}
				if shards > 1 {
					sx, err := mcost.BuildSharded(dc.ds.Space, dc.ds.Objects, opt, mcost.ShardOptions{Shards: shards})
					if err != nil {
						t.Fatal(err)
					}
					eng = sx
				} else {
					ix, err := mcost.Build(dc.ds.Space, dc.ds.Objects, opt)
					if err != nil {
						t.Fatal(err)
					}
					eng = ix
				}
				runEquivalence(t, eng, dc.ds)
			})
		}
	}
}

func runEquivalence(t *testing.T, eng engineUnderTest, ds *dataset.Dataset) {
	space := eng.Space()
	cache, err := rescache.New(rescache.Config{Entries: 64, Dist: space.Distance})
	if err != nil {
		t.Fatal(err)
	}
	seedR := 0.35 * space.Bound
	probeR := 0.15 * space.Bound
	if space.Discrete {
		seedR = math.Floor(seedR)
		probeR = math.Max(1, math.Floor(probeR))
	}

	hits := 0
	for i := 0; i < 12; i++ {
		q := ds.Objects[i*17%len(ds.Objects)]

		// Seed the cache from the engine's own complete results.
		cache.PutRange(q, seedR, directRange(t, eng, q, seedR), eng.PriceRange(seedR))
		cache.PutNN(q, 8, directNN(t, eng, q, 8), eng.PriceNN(8))

		// Exact range repeat.
		if pr := cache.GetRange(q, seedR, bigEst); pr.Hit {
			hits++
			assertBitIdentical(t, "range repeat", pr.Matches, directRange(t, eng, q, seedR))
		} else {
			t.Fatalf("exact range repeat %d must hit", i)
		}
		// Narrower radius, same center.
		if pr := cache.GetRange(q, probeR, bigEst); pr.Hit {
			hits++
			assertBitIdentical(t, "range narrower", pr.Matches, directRange(t, eng, q, probeR))
		} else {
			t.Fatalf("narrower same-center range %d must hit", i)
		}
		// Off-center contained query: any pool object close enough that
		// d(Q,Q') + probeR ≤ seedR.
		for _, cand := range ds.Objects[:80] {
			if d := space.Distance(q, cand); d > 0 && d+probeR <= seedR {
				if pr := cache.GetRange(cand, probeR, bigEst); pr.Hit {
					hits++
					assertBitIdentical(t, "range off-center", pr.Matches, directRange(t, eng, cand, probeR))
				} else {
					t.Fatalf("provably contained off-center range must hit (d=%g)", d)
				}
				break
			}
		}
		// NN exact repeat and prefix from the k-NN-sourced entry.
		if pr := cache.GetNN(q, 8, bigEst); pr.Hit {
			hits++
			assertBitIdentical(t, "nn repeat", pr.Matches, directNN(t, eng, q, 8))
		} else {
			t.Fatalf("exact NN repeat %d must hit", i)
		}
		if pr := cache.GetNN(q, 3, bigEst); pr.Hit {
			hits++
			assertBitIdentical(t, "nn prefix", pr.Matches, directNN(t, eng, q, 3))
		}
		// NN answered from the RANGE superset at an off-center query:
		// exact only when the containment proof succeeds; when it does,
		// the answer must match direct execution bit for bit.
		for _, cand := range ds.Objects[40:120] {
			d := space.Distance(q, cand)
			if d == 0 || d >= seedR {
				continue
			}
			if pr := cache.GetNN(cand, 2, bigEst); pr.Hit {
				hits++
				assertBitIdentical(t, "nn from range superset", pr.Matches, directNN(t, eng, cand, 2))
				break
			}
		}
	}
	if hits < 48 {
		t.Fatalf("matrix exercised too few hits: %d", hits)
	}
	st := cache.Stats()
	if st.Hits < int64(hits) || st.ProbeDists == 0 {
		t.Fatalf("cache stats inconsistent with observed hits: %+v", st)
	}
}
