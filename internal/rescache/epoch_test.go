package rescache_test

import (
	"testing"

	"mcost"
	"mcost/internal/mtree"
	"mcost/internal/rescache"
)

// TestBumpEpochInvalidates is the regression test for the stale-delete
// bug: before write-epoch invalidation, an entry cached ahead of a
// Delete kept serving the deleted object. Any write now bumps the
// cache epoch, and entries stamped under an older epoch must never hit
// again. (On the pre-fix cache, which had no epoch, both post-write
// probes below still hit and the test fails.)
func TestBumpEpochInvalidates(t *testing.T) {
	c := newCache(t, rescache.Config{Entries: 8, Shards: 1, Dist: lineDist})
	m := []mtree.Match{{Object: 1.0, OID: 1, Distance: 1.0}}
	c.PutRange(0.0, 2.0, m, bigEst)
	c.PutNN(0.0, 1, m, bigEst)
	if pr := c.GetRange(0.0, 2.0, bigEst); !pr.Hit {
		t.Fatal("pre-write range probe must hit")
	}
	if pr := c.GetNN(0.0, 1, bigEst); !pr.Hit {
		t.Fatal("pre-write NN probe must hit")
	}

	c.BumpEpoch() // a write landed; OID 1 may no longer exist

	if pr := c.GetRange(0.0, 2.0, bigEst); pr.Hit {
		t.Fatalf("range entry from before the write must be stale, served %+v", pr.Matches)
	}
	if pr := c.GetNN(0.0, 1, bigEst); pr.Hit {
		t.Fatalf("NN entry from before the write must be stale, served %+v", pr.Matches)
	}

	// Entries stored after the bump are live again.
	c.PutRange(0.0, 2.0, m, bigEst)
	if pr := c.GetRange(0.0, 2.0, bigEst); !pr.Hit {
		t.Fatal("post-write put must serve")
	}
}

// TestPutAtStaleEpochNeverServes pins the race contract: the serving
// layer captures the epoch BEFORE executing a query and hands it to
// PutRangeAt/PutNNAt. If a write bumps the epoch while the query runs,
// the entry lands already stale and must never serve a post-write
// probe.
func TestPutAtStaleEpochNeverServes(t *testing.T) {
	c := newCache(t, rescache.Config{Entries: 8, Shards: 1, Dist: lineDist})
	m := []mtree.Match{{Object: 1.0, OID: 1, Distance: 1.0}}

	before := c.Epoch() // query admitted, starts executing
	c.BumpEpoch()       // concurrent write lands mid-flight
	c.PutRangeAt(0.0, 2.0, m, bigEst, before)
	c.PutNNAt(0.0, 1, m, bigEst, before)

	if pr := c.GetRange(0.0, 2.0, bigEst); pr.Hit {
		t.Fatal("entry computed against the pre-write tree must not serve")
	}
	if pr := c.GetNN(0.0, 1, bigEst); pr.Hit {
		t.Fatal("NN entry computed against the pre-write tree must not serve")
	}

	// The same put stamped with the current epoch serves fine.
	c.PutRangeAt(0.0, 2.0, m, bigEst, c.Epoch())
	if pr := c.GetRange(0.0, 2.0, bigEst); !pr.Hit {
		t.Fatal("current-epoch put must serve")
	}
}

// TestEvictionPrefersStaleEntries: once a write invalidates the
// resident entries, they are the first eviction victims regardless of
// their saved cost.
func TestEvictionPrefersStaleEntries(t *testing.T) {
	c := newCache(t, rescache.Config{Entries: 2, Shards: 1, Dist: lineDist})
	costly := []mtree.Match{{Object: 10.0, OID: 1, Distance: 0.5}}
	c.PutRange(10.0, 1.0, costly, bigEst)
	c.BumpEpoch()
	cheap := []mtree.Match{{Object: 20.0, OID: 2, Distance: 0.5}}
	c.PutRange(20.0, 1.0, cheap, mcost.CostEstimate{Nodes: 1, Dists: 1})
	// Capacity 2, both resident; the next put must evict the stale
	// costly entry, not the live cheap one.
	c.PutRange(30.0, 1.0, []mtree.Match{{Object: 30.0, OID: 3, Distance: 0}}, bigEst)
	if pr := c.GetRange(20.0, 1.0, bigEst); !pr.Hit {
		t.Fatal("live entry must survive eviction over a stale one")
	}
}
