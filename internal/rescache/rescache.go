// Package rescache is a metric-exact result cache: a sharded LRU of
// recent range and k-NN result sets keyed in the metric space itself.
//
// The triangle inequality turns a cached result set into a verified
// index region. A cached range result for (Q′, r′) holds every object
// within r′ of Q′, so for a new query (Q, r) with d(Q,Q′) + r ≤ r′ the
// ball of Q is contained in the ball of Q′: the cached set is a proven
// superset and the exact answer is one distance computation (to the
// cached center) plus a filter over the cached matches — no traversal,
// no approximation. A k-NN query is answered from a cached superset
// when its k-th filtered distance d_k satisfies d_k ≤ r′ − d(Q,Q′):
// any object outside the cached ball is then provably farther than the
// k-th candidate, so the filtered top k is the true top k.
//
// Cached k-NN result sets are reused the same way with one weakening:
// a top-k set for Q′ is only guaranteed to contain every object
// *strictly* inside its k-th distance (ties at the boundary may have
// been dropped), so k-NN-sourced entries are open balls and every
// containment test against them is strict.
//
// Probing is cost-driven. The caller passes the cost model's L-MCM
// prediction for the traversal the cache would avoid; the cache only
// spends probe distances while their count stays under the hit-rate-
// discounted prediction (expected probe cost must undercut the expected
// traversal savings), so a workload that never repeats itself degrades
// to a near-free no-op. Eviction is likewise cost-weighted: when a
// shard is full it evicts, among the least-recent entries, the one
// whose hits have saved the least predicted traversal cost — an
// expensive-to-recompute entry outlives a cheap one of equal recency.
//
// Exactness contract: probe distances are computed with the same
// DistanceFunc the index uses, cached range sets preserve the engine's
// emission order (a query-independent total order — tree DFS position,
// or shard-concatenated DFS position for a sharded engine), and
// filtering preserves subset order; k-NN answers are returned in the
// engines' canonical (distance, OID) order. Hit results are therefore
// bit-identical to direct execution. Entries must only be created from
// complete, error-free results (never budget-exhausted partials), and
// the cache must be Reset when the underlying index mutates.
package rescache

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"mcost/internal/core"
	"mcost/internal/metric"
	"mcost/internal/mtree"
)

// DefaultShards is the lock-sharding factor when Config.Shards is zero.
const DefaultShards = 8

// DefaultMaxProbe caps the cached centers examined per probe when
// Config.MaxProbe is zero. The cost gate usually stops a probe earlier;
// the cap bounds the worst case against a huge predicted traversal.
const DefaultMaxProbe = 64

// evictSample is how many least-recent entries compete on saved cost
// when a full shard evicts. Sampling from the LRU tail keeps eviction
// O(1) while still letting an expensive entry outlive a cheap one.
const evictSample = 4

// Config assembles a Cache.
type Config struct {
	// Entries caps the total cached result sets across all shards
	// (required, > 0).
	Entries int
	// Shards is the lock-sharding factor (0 = DefaultShards). Entries
	// are spread by a fingerprint of their center, so an exactly
	// repeated query lands in one shard's MRU position.
	Shards int
	// MaxRadius rejects range entries with a larger radius (0 = no
	// limit): wide balls carry large result sets and rarely contain
	// later queries, so they mostly cost memory.
	MaxRadius float64
	// MaxProbe caps the cached centers examined per probe
	// (0 = DefaultMaxProbe).
	MaxProbe int
	// Dist is the index's own distance function (required). Probe and
	// filter distances must be computed by exactly the function the
	// traversal would have used, or hit results stop being bit-identical.
	Dist metric.DistanceFunc
}

// entry is one cached result set: the ball it verifies plus the matches
// inside it. Entries are immutable after insertion (probes read them
// without the shard lock); only the LRU bookkeeping mutates under lock.
type entry struct {
	fp     uint64
	center metric.Object
	// epoch is the cache's write epoch at insertion. A probe only trusts
	// entries from the current epoch: any index mutation bumps the epoch
	// (see BumpEpoch), so result sets proven against the old index can
	// never answer a post-write query.
	epoch uint64
	// radius is the verified ball radius: the query radius for a
	// range-sourced entry, the k-th neighbor distance for a k-NN-sourced
	// one.
	radius float64
	// open marks a k-NN-sourced entry: the set is only guaranteed to
	// hold objects *strictly* inside radius, so containment tests
	// against it are strict.
	open bool
	// rangeOrdered reports that matches preserve the engine's range
	// emission order (a query-independent total order on objects). Only
	// such entries may answer range queries: filtering preserves the
	// order a direct traversal would emit. k-NN-sourced entries are
	// (distance, OID)-ordered instead and answer only k-NN queries.
	rangeOrdered bool
	matches      []mtree.Match
	// value is the scalar traversal cost (predicted node reads +
	// distance computations) one hit on this entry saves; hits
	// accumulate it into the eviction weight.
	value float64
	hits  atomic.Int64

	elem    *list.Element
	evicted bool
}

// weight is the eviction score: the predicted traversal cost this entry
// has saved so far, plus the cost the next hit would save. Caller holds
// the shard lock.
func (e *entry) weight() float64 { return e.value * float64(1+e.hits.Load()) }

type cacheShard struct {
	mu sync.Mutex
	ll *list.List // of *entry; front = most recent
}

// Cache is the sharded metric-exact result cache. It is safe for
// concurrent use.
type Cache struct {
	cfg      Config
	perShard int
	shards   []*cacheShard

	hits       atomic.Int64
	misses     atomic.Int64
	probeDists atomic.Int64
	evictions  atomic.Int64

	// hitRate is an EWMA of probe outcomes (stored as math.Float64bits),
	// seeding the cost gate's expected savings. It starts optimistic so
	// a fresh cache probes at all, and is floored so a cold streak can
	// recover.
	hitRate atomic.Uint64

	// epoch is the write epoch: entries are stamped with it on insert
	// and ignored by probes once it moves on.
	epoch atomic.Uint64
}

const (
	hitRateInit  = 0.5
	hitRateAlpha = 0.05
	hitRateFloor = 0.02
)

// New validates cfg and returns an empty cache.
func New(cfg Config) (*Cache, error) {
	if cfg.Entries <= 0 {
		return nil, errors.New("rescache: Entries must be positive")
	}
	if cfg.Dist == nil {
		return nil, errors.New("rescache: nil distance function")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.Shards > cfg.Entries {
		cfg.Shards = cfg.Entries
	}
	if cfg.MaxProbe <= 0 {
		cfg.MaxProbe = DefaultMaxProbe
	}
	c := &Cache{
		cfg:      cfg,
		perShard: (cfg.Entries + cfg.Shards - 1) / cfg.Shards,
		shards:   make([]*cacheShard, cfg.Shards),
	}
	for i := range c.shards {
		c.shards[i] = &cacheShard{ll: list.New()}
	}
	c.hitRate.Store(math.Float64bits(hitRateInit))
	return c, nil
}

// Stats is a point-in-time view of the cache's work.
type Stats struct {
	Hits       int64 // probes answered exactly from a cached superset
	Misses     int64 // Get calls that fell through to the engine
	ProbeDists int64 // distance computations spent probing and filtering
	Evictions  int64
	Entries    int
}

// Stats returns the current counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		ProbeDists: c.probeDists.Load(),
		Evictions:  c.evictions.Load(),
		Entries:    c.Len(),
	}
}

// Len returns the number of cached result sets.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// BumpEpoch invalidates every current entry in one atomic step. Call it
// after each index mutation (insert or delete): a cached set is only
// exact while the indexed objects are unchanged, and a cached ball from
// before a delete can still "prove" containment of the removed object.
// Stale entries stop answering probes immediately and age out of the
// LRU lists under insertion pressure.
//
// Ordering contract: the bump must happen after the mutation is
// applied, and results computed against the pre-write index must not be
// Put afterwards — the serving layer gets both for free by serializing
// writes against in-flight queries.
func (c *Cache) BumpEpoch() { c.epoch.Add(1) }

// Epoch returns the current write epoch (0 for a fresh cache).
func (c *Cache) Epoch() uint64 { return c.epoch.Load() }

// Reset drops every entry. Call when the underlying index mutates: a
// cached set is only exact while the indexed objects are unchanged.
func (c *Cache) Reset() {
	for _, s := range c.shards {
		s.mu.Lock()
		for el := s.ll.Front(); el != nil; el = el.Next() {
			e := el.Value.(*entry)
			e.evicted = true
			e.elem = nil
		}
		s.ll.Init()
		s.mu.Unlock()
	}
}

// Probe is the outcome of one Get.
type Probe struct {
	// Matches is the exact result set when Hit; nil otherwise.
	Matches []mtree.Match
	// Hit reports that a cached superset proved containment.
	Hit bool
	// Dists is the distance computations the probe spent (center
	// distances plus filter distances), for the caller's accounting.
	Dists int
}

// scalar collapses a cost estimate into distance-computation units for
// the probe gate: a node read costs at least the distance computation
// it implies, so the sum is a conservative floor on traversal work.
func scalar(est core.CostEstimate) float64 { return est.Nodes + est.Dists }

func (c *Cache) loadHitRate() float64 {
	return math.Float64frombits(c.hitRate.Load())
}

// observeProbe folds one probe outcome into the hit-rate EWMA.
func (c *Cache) observeProbe(hit bool) {
	for {
		old := c.hitRate.Load()
		x := 0.0
		if hit {
			x = 1.0
		}
		next := (1-hitRateAlpha)*math.Float64frombits(old) + hitRateAlpha*x
		if next < hitRateFloor {
			next = hitRateFloor
		}
		if c.hitRate.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// distBudget is the probe gate: the number of probe distances whose
// expected cost still undercuts the expected traversal savings,
// hit-rate-discounted. Zero means the prediction is too cheap (or the
// hit rate too low) for probing to pay off.
func (c *Cache) distBudget(est core.CostEstimate) int {
	b := c.loadHitRate() * scalar(est)
	if b >= math.MaxInt32 {
		return math.MaxInt32
	}
	return int(b)
}

// snapshot copies the shard's entries most-recent-first. Entries are
// immutable, so the scan itself runs without the lock.
func (s *cacheShard) snapshot(buf []*entry) []*entry {
	s.mu.Lock()
	for el := s.ll.Front(); el != nil; el = el.Next() {
		buf = append(buf, el.Value.(*entry))
	}
	s.mu.Unlock()
	return buf
}

// touch moves a hit entry to its shard's MRU position.
func (c *Cache) touch(e *entry) {
	s := c.shards[e.fp%uint64(len(c.shards))]
	s.mu.Lock()
	if !e.evicted {
		s.ll.MoveToFront(e.elem)
	}
	s.mu.Unlock()
	e.hits.Add(1)
}

// GetRange probes for an exact answer to range(q, radius). est is the
// cost model's prediction for the traversal a hit avoids; it gates how
// many probe distances the cache may spend.
func (c *Cache) GetRange(q metric.Object, radius float64, est core.CostEstimate) Probe {
	budget := c.distBudget(est)
	if budget < 1 {
		c.misses.Add(1)
		return Probe{}
	}
	spent, centers := 0, 0
	cur := c.epoch.Load()
	start := int(fingerprint(q) % uint64(len(c.shards)))
	var buf []*entry
	for si := 0; si < len(c.shards) && spent < budget && centers < c.cfg.MaxProbe; si++ {
		buf = c.shards[(start+si)%len(c.shards)].snapshot(buf[:0])
		for _, e := range buf {
			if spent >= budget || centers >= c.cfg.MaxProbe {
				break
			}
			// A stale ball was proven against a different index; a
			// narrower ball can never contain the query. Skip both
			// without a distance computation.
			if e.epoch != cur || !e.rangeOrdered || e.radius < radius {
				continue
			}
			dqq := c.cfg.Dist(q, e.center)
			spent++
			centers++
			// Exact repeat: d(Q,Q′) = 0 makes every object equidistant
			// from both centers, so the cached set for the same radius is
			// the answer verbatim — one distance, no filter.
			if dqq == 0 && radius == e.radius {
				c.finishProbe(e, spent)
				return Probe{Matches: e.matches, Hit: true, Dists: spent}
			}
			if dqq+radius > e.radius || (e.open && dqq+radius == e.radius) {
				continue
			}
			// Containment proven: the filter is always worth its cost —
			// it is bounded by the candidate count, which the avoided
			// traversal would have spent on the same objects anyway.
			matches, filterDists := filterRange(c.cfg.Dist, q, radius, dqq, e.matches)
			spent += filterDists
			c.finishProbe(e, spent)
			return Probe{Matches: matches, Hit: true, Dists: spent}
		}
	}
	c.probeDists.Add(int64(spent))
	c.misses.Add(1)
	if centers > 0 {
		c.observeProbe(false)
	}
	return Probe{Dists: spent}
}

// GetNN probes for an exact answer to nn(q, k). A hit requires a cached
// superset whose k-th filtered distance proves no outside object can
// displace the top k (see the package comment for the inequality).
func (c *Cache) GetNN(q metric.Object, k int, est core.CostEstimate) Probe {
	budget := c.distBudget(est)
	if budget < 1 || k <= 0 {
		c.misses.Add(1)
		return Probe{}
	}
	spent, centers := 0, 0
	cur := c.epoch.Load()
	start := int(fingerprint(q) % uint64(len(c.shards)))
	var buf []*entry
	for si := 0; si < len(c.shards) && spent < budget && centers < c.cfg.MaxProbe; si++ {
		buf = c.shards[(start+si)%len(c.shards)].snapshot(buf[:0])
		for _, e := range buf {
			if spent >= budget || centers >= c.cfg.MaxProbe {
				break
			}
			if e.epoch != cur || len(e.matches) < k {
				continue
			}
			dqq := c.cfg.Dist(q, e.center)
			spent++
			centers++
			// Exact repeat against a k-NN-sourced entry: the cached
			// answer is canonical (distance, OID)-ascending, so its first
			// k elements are the true top k for any k up to the stored
			// one — the open-ball boundary caveat doesn't apply when the
			// stored set IS the engine's own answer for this center.
			if dqq == 0 && e.open {
				c.finishProbe(e, spent)
				return Probe{Matches: e.matches[:k:k], Hit: true, Dists: spent}
			}
			// The k-NN filter prices the whole candidate set before it
			// knows whether containment holds, so it must fit the budget
			// up front.
			if spent+len(e.matches) > budget {
				continue
			}
			if dqq >= e.radius {
				continue // the k-th condition below could never hold
			}
			cand, filterDists := filterNN(c.cfg.Dist, q, e.matches)
			spent += filterDists
			if len(cand) < k {
				continue
			}
			dk := cand[k-1].Distance
			if dk > e.radius-dqq || (e.open && dk == e.radius-dqq) {
				continue
			}
			c.finishProbe(e, spent)
			return Probe{Matches: cand[:k:k], Hit: true, Dists: spent}
		}
	}
	c.probeDists.Add(int64(spent))
	c.misses.Add(1)
	if centers > 0 {
		c.observeProbe(false)
	}
	return Probe{Dists: spent}
}

// finishProbe records a hit's bookkeeping.
func (c *Cache) finishProbe(e *entry, spent int) {
	c.touch(e)
	c.probeDists.Add(int64(spent))
	c.hits.Add(1)
	c.observeProbe(true)
}

// filterRange keeps the cached matches within radius of q, preserving
// superset order. The parent-distance lower bound |d(Q′,o) − d(Q,Q′)|
// excludes candidates without a distance computation; survivors get the
// exact distance the response requires.
func filterRange(dist metric.DistanceFunc, q metric.Object, radius, dqq float64, cached []mtree.Match) ([]mtree.Match, int) {
	out := make([]mtree.Match, 0, len(cached))
	dists := 0
	for _, m := range cached {
		if math.Abs(m.Distance-dqq) > radius {
			continue
		}
		d := dist(q, m.Object)
		dists++
		if d <= radius {
			out = append(out, mtree.Match{Object: m.Object, OID: m.OID, Distance: d})
		}
	}
	return out, dists
}

// filterNN re-scores every cached match against q and returns them in
// the engines' canonical (distance, OID) order.
func filterNN(dist metric.DistanceFunc, q metric.Object, cached []mtree.Match) ([]mtree.Match, int) {
	out := make([]mtree.Match, len(cached))
	for i, m := range cached {
		out[i] = mtree.Match{Object: m.Object, OID: m.OID, Distance: dist(q, m.Object)}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].OID < out[j].OID
	})
	return out, len(cached)
}

// PutRange caches a complete range result. est is the traversal cost
// the entry will save per hit — the eviction weight. Callers must never
// pass partial (budget- or context-stopped) results.
func (c *Cache) PutRange(q metric.Object, radius float64, matches []mtree.Match, est core.CostEstimate) {
	c.PutRangeAt(q, radius, matches, est, c.epoch.Load())
}

// PutRangeAt is PutRange stamping the entry with the write epoch the
// caller observed before executing the query. A writer that raced the
// execution has already moved the epoch on, so the entry lands stale
// and never answers a probe — the only race-free way to publish results
// computed outside the cache's own synchronization.
func (c *Cache) PutRangeAt(q metric.Object, radius float64, matches []mtree.Match, est core.CostEstimate, epoch uint64) {
	if radius < 0 || (c.cfg.MaxRadius > 0 && radius > c.cfg.MaxRadius) {
		return
	}
	c.insert(&entry{
		epoch:        epoch,
		center:       q,
		radius:       radius,
		rangeOrdered: true,
		matches:      cloneMatches(matches),
		value:        scalar(est),
	})
}

// PutNN caches a complete k-NN result as an open ball of the k-th
// neighbor distance. Results shorter than k (dataset smaller than k) or
// with a zero k-th distance verify no ball and are skipped.
func (c *Cache) PutNN(q metric.Object, k int, matches []mtree.Match, est core.CostEstimate) {
	c.PutNNAt(q, k, matches, est, c.epoch.Load())
}

// PutNNAt is PutNN stamping the caller-observed write epoch (see
// PutRangeAt).
func (c *Cache) PutNNAt(q metric.Object, k int, matches []mtree.Match, est core.CostEstimate, epoch uint64) {
	if len(matches) < k || k <= 0 {
		return
	}
	rk := matches[k-1].Distance
	if rk <= 0 || (c.cfg.MaxRadius > 0 && rk > c.cfg.MaxRadius) {
		return
	}
	c.insert(&entry{
		epoch:   epoch,
		center:  q,
		radius:  rk,
		open:    true,
		matches: cloneMatches(matches[:k]),
		value:   scalar(est),
	})
}

// insert adds e to its fingerprint shard, replacing an entry for the
// same center and ball, and evicts by weighted LRU when the shard is
// full.
func (c *Cache) insert(e *entry) {
	e.fp = fingerprint(e.center)
	s := c.shards[e.fp%uint64(len(c.shards))]
	s.mu.Lock()
	defer s.mu.Unlock()
	// Replace an identical ball: a miss storm (concurrent misses on the
	// same query before the first Put lands) must not fill the shard
	// with duplicates. The fingerprint narrows candidates; the distance
	// check makes replacement exact.
	for el := s.ll.Front(); el != nil; el = el.Next() {
		old := el.Value.(*entry)
		if old.fp == e.fp && old.radius == e.radius && old.open == e.open &&
			old.rangeOrdered == e.rangeOrdered && c.cfg.Dist(old.center, e.center) == 0 {
			old.evicted = true
			s.ll.Remove(el)
			break
		}
	}
	for s.ll.Len() >= c.perShard {
		c.evictLocked(s)
	}
	e.elem = s.ll.PushFront(e)
}

// evictLocked removes the lowest-weight entry among the evictSample
// least-recent ones: recency picks the candidates, saved traversal cost
// picks the victim. Entries from a past write epoch can never answer a
// probe again, so they lose every contest. Caller holds s.mu.
func (c *Cache) evictLocked(s *cacheShard) {
	victim := s.ll.Back()
	if victim == nil {
		return
	}
	cur := c.epoch.Load()
	weight := func(el *list.Element) float64 {
		e := el.Value.(*entry)
		if e.epoch != cur {
			return -1
		}
		return e.weight()
	}
	el := victim
	for i := 1; i < evictSample && el != nil; i++ {
		el = el.Prev()
		if el != nil && weight(el) < weight(victim) {
			victim = el
		}
	}
	victim.Value.(*entry).evicted = true
	victim.Value.(*entry).elem = nil
	s.ll.Remove(victim)
	c.evictions.Add(1)
}

func cloneMatches(ms []mtree.Match) []mtree.Match {
	out := make([]mtree.Match, len(ms))
	copy(out, ms)
	return out
}

// fingerprint hashes an object's identity for shard placement and
// duplicate narrowing. Equal objects must hash equal; collisions are
// resolved by a distance check before anything depends on identity.
func fingerprint(o metric.Object) uint64 {
	h := fnv.New64a()
	switch v := o.(type) {
	case metric.Vector:
		var b [8]byte
		for _, x := range v {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
			_, _ = h.Write(b[:])
		}
	case string:
		_, _ = io.WriteString(h, v)
	default:
		_, _ = fmt.Fprintf(h, "%v", v)
	}
	return h.Sum64()
}
