package server

import (
	"testing"
	"time"

	"mcost/internal/core"
)

// fakeClock is a manually-advanced clock for deterministic bucket
// tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func est(nodes, dists float64) core.CostEstimate {
	return core.CostEstimate{Nodes: nodes, Dists: dists}
}

func TestAdmitterDisabled(t *testing.T) {
	if a := NewAdmitter(AdmitConfig{}, nil); a != nil {
		t.Fatalf("zero config should disable admission, got %+v", a)
	}
	var a *Admitter
	if d := a.Admit(est(1e12, 1e12)); !d.Admit {
		t.Fatalf("nil admitter must admit everything")
	}
}

func TestAdmitterDrainAndShed(t *testing.T) {
	clk := newFakeClock()
	// 100 node reads/s, 1s burst, 100ms borrowing: the bucket opens
	// with 100 tokens and can stretch to 110 before shedding.
	a := NewAdmitter(AdmitConfig{NodeReadsPerSec: 100, BurstSeconds: 1, MaxQueueDelay: 100 * time.Millisecond}, clk.now)

	if d := a.Admit(est(60, 0)); !d.Admit || d.Wait != 0 {
		t.Fatalf("first query must be covered by the burst: %+v", d)
	}
	// 40 tokens left; a 45-read query waits 50ms of refill — inside the
	// borrow window, so it is admitted queued.
	d := a.Admit(est(45, 0))
	if !d.Admit {
		t.Fatalf("borrowable query shed: %+v", d)
	}
	if d.Wait <= 0 || d.Wait > 100*time.Millisecond {
		t.Fatalf("expected a sub-window queue delay, got %v", d.Wait)
	}
	// Level is now -5; a 100-read query needs 1.05s of refill >> window.
	d = a.Admit(est(100, 0))
	if d.Admit {
		t.Fatalf("overload query admitted: %+v", d)
	}
	if d.RetryAfter <= 0 {
		t.Fatalf("shed decision must carry a retry-after, got %+v", d)
	}
	// The retry-after is proportional to the deficit: waiting that long
	// (plus the borrow window) makes the same query admissible again.
	clk.advance(d.RetryAfter + 100*time.Millisecond)
	if d := a.Admit(est(100, 0)); !d.Admit {
		t.Fatalf("query still shed after honoring retry-after: %+v", d)
	}
}

func TestAdmitterRefillCapsAtBurst(t *testing.T) {
	clk := newFakeClock()
	a := NewAdmitter(AdmitConfig{NodeReadsPerSec: 10, BurstSeconds: 1, MaxQueueDelay: time.Millisecond}, clk.now)
	clk.advance(time.Hour) // refill must cap at 10, not 36000
	if d := a.Admit(est(10, 0)); !d.Admit {
		t.Fatalf("burst-sized query shed after idle: %+v", d)
	}
	if d := a.Admit(est(10, 0)); d.Admit {
		t.Fatalf("second burst-sized query must shed (bucket capped at burst): %+v", d)
	}
}

func TestAdmitterOversizedQueryAdmittedWhenIdle(t *testing.T) {
	clk := newFakeClock()
	a := NewAdmitter(AdmitConfig{NodeReadsPerSec: 10, BurstSeconds: 1, MaxQueueDelay: time.Millisecond}, clk.now)
	// Costs 50 > burst 10: can never be covered, but a full bucket
	// admits it (otherwise it would starve forever) and the overdraft
	// throttles what follows.
	if d := a.Admit(est(50, 0)); !d.Admit {
		t.Fatalf("oversized query must be admitted from a full bucket: %+v", d)
	}
	if d := a.Admit(est(1, 0)); d.Admit {
		t.Fatalf("overdraft must shed the next query: %+v", d)
	}
	clk.advance(5 * time.Second) // repay 50 tokens
	if d := a.Admit(est(1, 0)); !d.Admit {
		t.Fatalf("bucket did not recover from overdraft: %+v", d)
	}
}

func TestAdmitterTinyRateSaturatesInsteadOfOverflowing(t *testing.T) {
	clk := newFakeClock()
	a := NewAdmitter(AdmitConfig{NodeReadsPerSec: 1e-9, BurstSeconds: 1, MaxQueueDelay: time.Millisecond}, clk.now)
	if d := a.Admit(est(20, 0)); !d.Admit {
		t.Fatalf("full-bucket bypass must admit the first query: %+v", d)
	}
	// The deficit now takes ~2e19 ns to repay — past time.Duration's
	// range. The wait must saturate, not wrap negative and admit.
	d := a.Admit(est(20, 0))
	if d.Admit {
		t.Fatalf("overflowed deficit wait admitted an overload query: %+v", d)
	}
	if d.RetryAfter <= 0 {
		t.Fatalf("saturated shed must still carry a positive retry-after: %+v", d)
	}
}

func TestAdmitterDistDimension(t *testing.T) {
	clk := newFakeClock()
	a := NewAdmitter(AdmitConfig{DistCalcsPerSec: 1000, BurstSeconds: 1, MaxQueueDelay: time.Millisecond}, clk.now)
	// Node dimension unlimited: a node-heavy query passes freely.
	if d := a.Admit(est(1e9, 500)); !d.Admit {
		t.Fatalf("node-heavy query shed on an unlimited dimension: %+v", d)
	}
	if d := a.Admit(est(0, 600)); d.Admit {
		t.Fatalf("distance budget not enforced: %+v", d)
	}
}

func TestAdmitterConcurrentUse(t *testing.T) {
	a := NewAdmitter(AdmitConfig{NodeReadsPerSec: 1e6, DistCalcsPerSec: 1e6}, nil)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 1000; j++ {
				a.Admit(est(1, 1))
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
