package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mcost/internal/budget"
	"mcost/internal/core"
	"mcost/internal/metric"
	"mcost/internal/mtree"
	"mcost/internal/obs"
)

// stubEngine is a minimal mutable engine whose Insert blocks until
// released — the controllable stuck writer the wedge tests need.
type stubEngine struct {
	entered chan struct{}
	release chan struct{}
}

func newStubEngine() *stubEngine {
	return &stubEngine{entered: make(chan struct{}), release: make(chan struct{})}
}

func (e *stubEngine) PriceRange(radius float64) core.CostEstimate { return core.CostEstimate{} }
func (e *stubEngine) PriceNN(k int) core.CostEstimate             { return core.CostEstimate{} }
func (e *stubEngine) RangeBatchTraced(ctx context.Context, qs []metric.Object, radius float64, b budget.Budget, tr *obs.Trace) ([][]mtree.Match, error) {
	return make([][]mtree.Match, len(qs)), nil
}
func (e *stubEngine) NNBatchTraced(ctx context.Context, qs []metric.Object, k int, b budget.Budget, tr *obs.Trace) ([][]mtree.Match, error) {
	return make([][]mtree.Match, len(qs)), nil
}
func (e *stubEngine) Size() int     { return 10 }
func (e *stubEngine) NumNodes() int { return 3 }
func (e *stubEngine) Height() int   { return 2 }
func (e *stubEngine) PageSize() int { return 4096 }

func (e *stubEngine) Insert(obj metric.Object) (uint64, error) {
	close(e.entered)
	<-e.release
	return 1, nil
}
func (e *stubEngine) Delete(obj metric.Object, oid uint64) error { return nil }

// wedgeClock is a hand-advanced clock for the wedge threshold.
type wedgeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *wedgeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *wedgeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func getHealth(t *testing.T, h http.Handler) (int, HealthResponse) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	var hr HealthResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &hr); err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	return rr.Code, hr
}

// Readiness: a server constructed NotReady answers 503 "building" until
// SetReady flips it, and can be taken back out of rotation.
func TestHealthReadiness(t *testing.T) {
	s := newTestServer(t, Config{NotReady: true})
	h := s.Handler()

	code, hr := getHealth(t, h)
	if code != http.StatusServiceUnavailable || hr.Status != "building" || hr.Ready {
		t.Fatalf("not-ready healthz = %d %+v, want 503 building", code, hr)
	}
	s.SetReady(true)
	code, hr = getHealth(t, h)
	if code != http.StatusOK || hr.Status != "ok" || !hr.Ready {
		t.Fatalf("ready healthz = %d %+v, want 200 ok", code, hr)
	}
	if hr.Objects != testIndex(t).Size() {
		t.Errorf("healthz objects = %d, want %d", hr.Objects, testIndex(t).Size())
	}
	s.SetReady(false)
	if code, _ := getHealth(t, h); code != http.StatusServiceUnavailable {
		t.Fatalf("un-readied healthz = %d, want 503", code)
	}
}

// Liveness: a write holding (or waiting on) the writer lock past the
// threshold turns /healthz into 503 "wedged", and recovery restores
// 200 — the signal a router's health loop fails over on.
func TestHealthWedged(t *testing.T) {
	eng := newStubEngine()
	clk := &wedgeClock{now: time.Unix(1000, 0)}
	s, err := New(Config{
		Engine:         eng,
		Decode:         VectorDecoder(4),
		WedgeThreshold: time.Second,
		Clock:          clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()

	if code, hr := getHealth(t, h); code != http.StatusOK || hr.Status != "ok" {
		t.Fatalf("idle healthz = %d %+v, want 200 ok", code, hr)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		req := httptest.NewRequest(http.MethodPost, "/v1/insert", strings.NewReader(`{"object":[1,2,3,4]}`))
		h.ServeHTTP(httptest.NewRecorder(), req)
	}()
	<-eng.entered // the write now holds the writer lock

	// (No healthy-path probe here: the 200 branch reads engine stats
	// under the readers-writer lock the stuck writer holds, so only the
	// wedged branch — which takes no lock — stays answerable.)
	clk.Advance(3 * time.Second)
	code, hr := getHealth(t, h)
	if code != http.StatusServiceUnavailable || hr.Status != "wedged" {
		t.Fatalf("healthz with a stuck write = %d %+v, want 503 wedged", code, hr)
	}
	if hr.WedgedMS < 2900 {
		t.Errorf("wedged_ms = %g, want >= 2900", hr.WedgedMS)
	}
	if !hr.Ready {
		t.Errorf("wedged response must still report ready=true (liveness, not readiness)")
	}

	close(eng.release)
	<-done
	if code, hr := getHealth(t, h); code != http.StatusOK || hr.Status != "ok" {
		t.Fatalf("healthz after recovery = %d %+v, want 200 ok", code, hr)
	}
}

// BootingHandler: every route 503s with a typed body while the engine
// builds, so a router's health loop can watch the node without routing
// to it.
func TestBootingHandler(t *testing.T) {
	h := BootingHandler()
	code, hr := getHealth(t, h)
	if code != http.StatusServiceUnavailable || hr.Status != "building" {
		t.Fatalf("booting healthz = %d %+v, want 503 building", code, hr)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/range", strings.NewReader(`{"query":[0,0,0,0],"radius":1}`))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("booting /v1/range = %d, want 503", rr.Code)
	}
	var er ErrorResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &er); err != nil || er.Code != "building" {
		t.Fatalf("booting /v1/range body = %q, want typed \"building\"", rr.Body.String())
	}
}

// /v1/model: engines without a wire-exportable model answer a typed
// 404; ModelReporter engines serve their summary verbatim.
func TestModelEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/v1/model", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("/v1/model on a plain index = %d, want 404", rr.Code)
	}
	var er ErrorResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &er); err != nil || er.Code != "no_model" {
		t.Fatalf("/v1/model body = %q, want typed \"no_model\"", rr.Body.String())
	}
}

// The 429 retry_after_ms jitter: every value stays in
// [base, base·1.25], and the spread is real — shed clients must not
// stampede back on one tick.
func TestRetryAfterJitterSpread(t *testing.T) {
	s := newTestServer(t, Config{JitterSeed: 42})

	const base = int64(100)
	lo, hi := base, base+int64(float64(base)*retryJitterFrac)
	seen := make(map[int64]bool)
	for i := 0; i < 500; i++ {
		v := s.jitterRetryMS(base)
		if v < lo || v > hi {
			t.Fatalf("jittered retry %d outside [%d, %d]", v, lo, hi)
		}
		seen[v] = true
	}
	if len(seen) < 10 {
		t.Errorf("500 draws produced only %d distinct retry_after_ms values; jitter is not spreading", len(seen))
	}
	// Tiny bases have no jitter span and must come back unchanged (and
	// a zero base is floored to 1ms so Retry-After stays meaningful).
	if v := s.jitterRetryMS(2); v != 2 {
		t.Errorf("jitterRetryMS(2) = %d, want 2", v)
	}
	if v := s.jitterRetryMS(0); v != 1 {
		t.Errorf("jitterRetryMS(0) = %d, want 1", v)
	}

	// Determinism: the same seed replays the same sequence — the pin
	// that makes shed-storm tests reproducible.
	s2 := newTestServer(t, Config{JitterSeed: 42})
	s3 := newTestServer(t, Config{JitterSeed: 42})
	for i := 0; i < 50; i++ {
		if a, b := s2.jitterRetryMS(base), s3.jitterRetryMS(base); a != b {
			t.Fatalf("draw %d: same seed diverged: %d vs %d", i, a, b)
		}
	}
}
