package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"mcost/internal/budget"
	"mcost/internal/metric"
	"mcost/internal/mtree"
	"mcost/internal/obs"
)

// Regression tests for three batcher defects, each written to fail on
// the pre-fix code:
//
//  1. a window timer armed for an already-dispatched queue flushed the
//     NEXT queue under the same key early (generations restarted at 0
//     when take() deleted the queue from the map);
//  2. callResult.queued was stamped after the engine returned, so
//     server.queue_ms silently included engine execution time;
//  3. dispatch ran under context.Background(), so Close could not
//     cancel an in-flight batch.

// waitPendingCalls polls until the batcher holds n queued calls for key.
func waitPendingCalls(t *testing.T, b *Batcher, key batchKey, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		b.mu.Lock()
		got := 0
		if pq := b.pending[key]; pq != nil {
			got = len(pq.calls)
		}
		b.mu.Unlock()
		if got == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("batcher never reached %d pending calls for %+v", n, key)
}

// TestBatcherStaleTimerDoesNotFlushReplacementQueue pins fix 1: after a
// size flush, the timer armed for the dispatched queue must not flush
// the fresh queue that later forms under the same key before its own
// window elapses.
func TestBatcherStaleTimerDoesNotFlushReplacementQueue(t *testing.T) {
	eng := &fakeEngine{}
	b := NewBatcher(eng, BatchConfig{Window: time.Hour, MaxBatch: 2}, nil, nil)
	// Capture armed timers instead of scheduling them: the test fires
	// them by hand.
	var (
		tmu    sync.Mutex
		timers []func()
	)
	b.after = func(d time.Duration, f func()) {
		tmu.Lock()
		timers = append(timers, f)
		tmu.Unlock()
	}
	key := batchKey{radius: 0.5}

	// First queue: call 1 arms the window timer, call 2 flushes by size.
	res12 := make(chan callResult, 2)
	go func() { res12 <- b.Do(context.Background(), key, "q1", budget.Budget{}) }()
	waitPendingCalls(t, b, key, 1)
	go func() { res12 <- b.Do(context.Background(), key, "q2", budget.Budget{}) }()
	for i := 0; i < 2; i++ {
		if res := <-res12; res.err != nil || res.batchSize != 2 {
			t.Fatalf("size flush: %+v", res)
		}
	}

	// Second queue under the same key: call 3 arms its own timer and
	// waits for a companion.
	res3 := make(chan callResult, 1)
	go func() { res3 <- b.Do(context.Background(), key, "q3", budget.Budget{}) }()
	waitPendingCalls(t, b, key, 1)

	// Fire the FIRST queue's timer — long stale, its batch went out by
	// size. It must not touch the second queue.
	tmu.Lock()
	if len(timers) != 2 {
		tmu.Unlock()
		t.Fatalf("expected a timer per queue head, got %d", len(timers))
	}
	stale := timers[0]
	tmu.Unlock()
	stale()

	select {
	case res := <-res3:
		t.Fatalf("stale window timer flushed the replacement queue early (batch size %d, err %v)", res.batchSize, res.err)
	case <-time.After(50 * time.Millisecond):
	}

	// Call 4 completes the second batch by size; call 3 must ride in it.
	go func() { _ = b.Do(context.Background(), key, "q4", budget.Budget{}) }()
	res := <-res3
	if res.err != nil || res.batchSize != 2 {
		t.Fatalf("replacement queue should flush by size with its companion: %+v", res)
	}
}

// engineHooks wraps fakeEngine with a per-dispatch hook, for tests that
// need to act (advance a clock, block) while the engine "executes".
type engineHooks struct {
	fakeEngine
	onRun func(ctx context.Context) error
}

func (e *engineHooks) exec(ctx context.Context, qs []metric.Object, b budget.Budget, tr *obs.Trace) ([][]mtree.Match, error) {
	if e.onRun != nil {
		if err := e.onRun(ctx); err != nil {
			// Typed partial: empty-but-valid per-query sets, like a
			// budget- or context-stopped traversal.
			out := make([][]mtree.Match, len(qs))
			for i := range out {
				out[i] = []mtree.Match{}
			}
			return out, err
		}
	}
	return e.run(qs, b, tr)
}

func (e *engineHooks) RangeBatchTraced(ctx context.Context, qs []metric.Object, radius float64, b budget.Budget, tr *obs.Trace) ([][]mtree.Match, error) {
	return e.exec(ctx, qs, b, tr)
}

func (e *engineHooks) NNBatchTraced(ctx context.Context, qs []metric.Object, k int, b budget.Budget, tr *obs.Trace) ([][]mtree.Match, error) {
	return e.exec(ctx, qs, b, tr)
}

// TestBatcherQueuedExcludesEngineTime pins fix 2: queue time ends when
// the batch starts executing, so an engine that takes 300ms must leave
// an immediately-dispatched call's queued duration at zero.
func TestBatcherQueuedExcludesEngineTime(t *testing.T) {
	clk := newFakeClock()
	eng := &engineHooks{onRun: func(context.Context) error {
		clk.advance(300 * time.Millisecond) // the engine "executing"
		return nil
	}}
	reg := obs.NewRegistry()
	b := NewBatcher(eng, BatchConfig{}, reg, clk.now)
	res := b.Do(context.Background(), batchKey{radius: 0.1}, "q", budget.Budget{})
	if res.err != nil {
		t.Fatalf("Do: %v", res.err)
	}
	if res.queued != 0 {
		t.Fatalf("queued = %v includes engine execution time; queueing ended at dispatch start", res.queued)
	}
	// The histogram the wire metric feeds from must agree: one sample,
	// landing in the zero bin.
	h := reg.Snapshot().Histograms["server.queue_ms"]
	if h.N != 1 || len(h.Counts) == 0 || h.Counts[0] != 1 {
		t.Fatalf("server.queue_ms observed %+v, want one zero-bin sample", h)
	}
}

// TestBatcherCloseCancelsInFlightDispatch pins fix 3: Close must reach
// a dispatch already executing in the engine, unblocking it with the
// typed context error and its partial results.
func TestBatcherCloseCancelsInFlightDispatch(t *testing.T) {
	started := make(chan struct{})
	eng := &engineHooks{onRun: func(ctx context.Context) error {
		close(started)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Second):
			return nil
		}
	}}
	b := NewBatcher(eng, BatchConfig{}, nil, nil)
	done := make(chan callResult, 1)
	go func() { done <- b.Do(context.Background(), batchKey{radius: 0.2}, "q", budget.Budget{}) }()
	<-started
	b.Close()
	select {
	case res := <-done:
		if !errors.Is(res.err, context.Canceled) {
			t.Fatalf("in-flight dispatch ended with %v, want the typed context.Canceled partial", res.err)
		}
		if res.matches == nil {
			t.Fatalf("cancelled dispatch must still deliver its (possibly empty) partial result set")
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("Close did not cancel the in-flight dispatch")
	}
}

// TestBatcherCallDisconnectDoesNotCancelBatch guards the companion
// contract around fix 3: one caller's context cancellation abandons its
// result but must not cancel the shared dispatch, which runs off the
// window timer's goroutine here.
func TestBatcherCallDisconnectDoesNotCancelBatch(t *testing.T) {
	release := make(chan struct{})
	var (
		mu        sync.Mutex
		sawCancel error
		ran       bool
	)
	eng := &engineHooks{onRun: func(ctx context.Context) error {
		<-release
		mu.Lock()
		sawCancel = ctx.Err()
		ran = true
		mu.Unlock()
		return nil
	}}
	b := NewBatcher(eng, BatchConfig{Window: time.Millisecond, MaxBatch: 8}, nil, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan callResult, 1)
	go func() { done <- b.Do(ctx, batchKey{radius: 0.3}, "q", budget.Budget{}) }()
	cancel() // the caller walks away; its batch still executes
	if res := <-done; !errors.Is(res.err, context.Canceled) {
		t.Fatalf("abandoned caller should see its own context error, got %+v", res)
	}
	close(release)
	// The dispatch keeps running under the batcher context, unaffected.
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		err, ok := sawCancel, ran
		mu.Unlock()
		if ok {
			if err != nil {
				t.Fatalf("caller disconnect leaked into the dispatch context: %v", err)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("dispatch never completed")
		}
		time.Sleep(time.Millisecond)
	}
}
