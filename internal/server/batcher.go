package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"mcost/internal/budget"
	"mcost/internal/metric"
	"mcost/internal/mtree"
	"mcost/internal/obs"
)

// Adaptive micro-batching. Under load many in-flight queries share a
// shape (same radius, same k) — exactly the batches the engine's
// shared-traversal RangeBatch/NNBatch execute with each node fetched
// once for the whole batch. The batcher holds an admitted query for at
// most a configurable window, coalesces it with compatible queued
// queries, and dispatches the batch through the engine, so node reads
// amortize when the server needs it most while an idle server pays at
// most one window of added latency (and none with Window = 0).

// BatchConfig tunes the micro-batcher.
type BatchConfig struct {
	// Window is the longest a query waits for batch companions. Zero
	// disables batching: every query dispatches alone, immediately.
	Window time.Duration
	// MaxBatch dispatches a batch as soon as it reaches this size
	// (default 32 when batching is on).
	MaxBatch int
}

func (c BatchConfig) withDefaults() BatchConfig {
	if c.Window > 0 && c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	return c
}

// batchKey identifies queries that may share one engine dispatch.
// Range queries batch per exact radius, k-NN per exact k: the shared
// traversal requires one radius/k for the whole batch.
type batchKey struct {
	nn     bool
	radius float64
	k      int
}

// call is one admitted query waiting in the batcher.
type call struct {
	q   metric.Object
	b   budget.Budget
	enq time.Time
	ch  chan callResult
}

type callResult struct {
	matches   []mtree.Match
	batchSize int
	queued    time.Duration
	err       error
}

// pendingQueue collects calls for one batchKey. gen identifies this
// queue instance for its window timer: generations are drawn from a
// batcher-wide monotonic counter, so a timer armed for a queue that was
// already dispatched by size can never match the replacement queue that
// later forms under the same key.
type pendingQueue struct {
	calls []*call
	gen   uint64
}

// Batcher coalesces admitted queries into engine batches. Dispatch
// totals are merged into the registry under the server.* names.
type Batcher struct {
	eng Engine
	cfg BatchConfig
	now func() time.Time
	// after schedules the window-flush callback (a test seam;
	// time.AfterFunc in production).
	after func(time.Duration, func())

	// ctx is cancelled by Close so shutdown reaches in-flight engine
	// dispatches. Per-call contexts are deliberately NOT threaded into
	// the dispatch: one client's disconnect must never fail its batch
	// companions.
	ctx    context.Context
	cancel context.CancelFunc

	// Dispatch-side instruments (nil registry hands out nil, free).
	cBatches   *obs.Counter
	cQueries   *obs.Counter
	cNodeReads *obs.Counter
	cDists     *obs.Counter
	hBatch     *obs.Hist
	hQueueMS   *obs.Hist

	mu      sync.Mutex
	pending map[batchKey]*pendingQueue
	nextGen uint64
	closed  bool
}

// errClosed reports Do on a closed batcher.
var errClosed = errors.New("server: batcher closed")

// NewBatcher returns a batcher dispatching into eng and recording into
// reg (which may be nil). The clock is injectable for tests.
func NewBatcher(eng Engine, cfg BatchConfig, reg *obs.Registry, now func() time.Time) *Batcher {
	if now == nil {
		now = time.Now
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Batcher{
		eng:        eng,
		cfg:        cfg.withDefaults(),
		now:        now,
		after:      func(d time.Duration, f func()) { time.AfterFunc(d, f) },
		ctx:        ctx,
		cancel:     cancel,
		cBatches:   reg.Counter("server.batches"),
		cQueries:   reg.Counter("server.batched_queries"),
		cNodeReads: reg.Counter("server.node_reads"),
		cDists:     reg.Counter("server.dist_calcs"),
		hBatch:     reg.Hist("server.batch_size", 64, 0, 256),
		hQueueMS:   reg.Hist("server.queue_ms", 50, 0, 500),
		pending:    make(map[batchKey]*pendingQueue),
	}
}

// Do executes one admitted query, batching it with compatible queued
// queries when batching is on. It blocks until the dispatch finishes or
// ctx is done; an abandoned call's slot still executes with its batch
// (the result is discarded), so companions are never failed by one
// client's disconnect.
func (b *Batcher) Do(ctx context.Context, key batchKey, q metric.Object, qb budget.Budget) callResult {
	c := &call{q: q, b: qb, enq: b.now(), ch: make(chan callResult, 1)}
	if b.cfg.Window <= 0 || b.cfg.MaxBatch <= 1 {
		b.dispatch(key, []*call{c})
	} else if err := b.enqueue(key, c); err != nil {
		return callResult{err: err}
	}
	select {
	case res := <-c.ch:
		return res
	case <-ctx.Done():
		return callResult{err: ctx.Err()}
	}
}

// enqueue adds c to its key's queue, arming the window timer on the
// first call and flushing by size when the queue fills.
func (b *Batcher) enqueue(key batchKey, c *call) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return errClosed
	}
	pq := b.pending[key]
	if pq == nil {
		b.nextGen++
		pq = &pendingQueue{gen: b.nextGen}
		b.pending[key] = pq
	}
	pq.calls = append(pq.calls, c)
	if len(pq.calls) >= b.cfg.MaxBatch {
		calls := b.take(key, pq)
		b.mu.Unlock()
		// The filling request's goroutine runs the dispatch: natural
		// backpressure, no unbounded goroutine growth.
		b.dispatch(key, calls)
		return nil
	}
	if len(pq.calls) == 1 {
		gen := pq.gen
		b.after(b.cfg.Window, func() { b.flushTimer(key, gen) })
	}
	b.mu.Unlock()
	return nil
}

// take detaches the queue's calls and removes the queue; its timer, if
// still pending, finds no queue with a matching generation and no-ops.
// Caller holds b.mu.
func (b *Batcher) take(key batchKey, pq *pendingQueue) []*call {
	calls := pq.calls
	pq.calls = nil
	delete(b.pending, key)
	return calls
}

// flushTimer dispatches whatever the window collected, unless the
// batch already went out by size (generation mismatch).
func (b *Batcher) flushTimer(key batchKey, gen uint64) {
	b.mu.Lock()
	pq := b.pending[key]
	if pq == nil || pq.gen != gen || len(pq.calls) == 0 {
		b.mu.Unlock()
		return
	}
	calls := b.take(key, pq)
	b.mu.Unlock()
	b.dispatch(key, calls)
}

// Close flushes every pending batch, then cancels the batcher context
// so in-flight dispatches unwind with typed partials, and fails later
// Do calls. The flush runs before the cancel: queued-but-undispatched
// queries still get a clean, complete execution on shutdown.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	flush := make(map[batchKey][]*call, len(b.pending))
	for key, pq := range b.pending {
		flush[key] = b.take(key, pq)
	}
	b.mu.Unlock()
	for key, calls := range flush {
		b.dispatch(key, calls)
	}
	b.cancel()
}

// batchBudget sums the per-call budgets into the batch-wide cap the
// engine enforces. Any unlimited call leaves that dimension unlimited —
// a capped companion must not constrain it.
func batchBudget(calls []*call) budget.Budget {
	var nodes, dists int64
	nodesOpen, distsOpen := false, false
	for _, c := range calls {
		if c.b.MaxNodeReads <= 0 {
			nodesOpen = true
		} else {
			nodes += c.b.MaxNodeReads
		}
		if c.b.MaxDistCalcs <= 0 {
			distsOpen = true
		} else {
			dists += c.b.MaxDistCalcs
		}
	}
	if nodesOpen {
		nodes = 0
	}
	if distsOpen {
		dists = 0
	}
	return budget.Budget{MaxNodeReads: nodes, MaxDistCalcs: dists}
}

// dispatch runs one batch through the engine, merges the dispatch trace
// into the registry, and distributes per-call results. A typed
// budget/context error reaches every call alongside its partial result
// set; engine failures reach every call with no results. The engine
// runs under the batcher's context — cancelled only by Close, never by
// a single call's disconnect — so shutdown can stop a slow batch while
// companions still share each other's fate.
func (b *Batcher) dispatch(key batchKey, calls []*call) {
	if len(calls) == 0 {
		return
	}
	qs := make([]metric.Object, len(calls))
	for i, c := range calls {
		qs[i] = c.q
	}
	tr := obs.NewTrace()
	// Queueing ends when the batch starts executing: stamp before the
	// engine call so server.queue_ms measures the wait alone, not the
	// engine's execution time.
	started := b.now()
	var (
		sets [][]mtree.Match
		err  error
	)
	bb := batchBudget(calls)
	if key.nn {
		sets, err = b.eng.NNBatchTraced(b.ctx, qs, key.k, bb, tr)
	} else {
		sets, err = b.eng.RangeBatchTraced(b.ctx, qs, key.radius, bb, tr)
	}
	b.cBatches.Inc()
	b.cQueries.Add(int64(len(calls)))
	b.cNodeReads.Add(tr.TotalNodes())
	b.cDists.Add(tr.TotalDists())
	b.hBatch.Observe(float64(len(calls)))
	for i, c := range calls {
		res := callResult{batchSize: len(calls), queued: started.Sub(c.enq), err: err}
		if i < len(sets) {
			res.matches = sets[i]
		}
		b.hQueueMS.Observe(res.queued.Seconds() * 1000)
		c.ch <- res
	}
}
