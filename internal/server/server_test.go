package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mcost"
	"mcost/internal/dataset"
	"mcost/internal/obs"
)

// The facade types are the engines this layer serves.
var (
	_ Engine = (*mcost.Index)(nil)
	_ Engine = (*mcost.ShardedIndex)(nil)
)

var (
	testIxOnce sync.Once
	testIx     *mcost.Index
)

// testIndex builds one small uniform index shared by the handler tests
// (read-only queries are safe concurrently).
func testIndex(t testing.TB) *mcost.Index {
	testIxOnce.Do(func() {
		d := dataset.Uniform(600, 4, 7)
		ix, err := mcost.Build(d.Space, d.Objects, mcost.Options{Seed: 7, Workers: 1})
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		testIx = ix
	})
	return testIx
}

func newTestServer(t testing.TB, cfg Config) *Server {
	ix := testIndex(t)
	cfg.Engine = ix
	if cfg.Decode == nil {
		cfg.Decode = VectorDecoder(4)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

func post(t testing.TB, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decodeResp[T any](t testing.TB, rec *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("decode response %q: %v", rec.Body.String(), err)
	}
	return v
}

func TestRangeEndpointMatchesDirectExecution(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	rec := post(t, h, "/v1/range", `{"query":[0.5,0.5,0.5,0.5],"radius":0.4}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeResp[QueryResponse](t, rec)
	if resp.Partial {
		t.Fatalf("unexpected partial result: %+v", resp)
	}
	if resp.Predicted.NodeReads <= 0 || resp.Predicted.DistCalcs <= 0 {
		t.Errorf("response must carry the admission prediction, got %+v", resp.Predicted)
	}
	want, err := testIndex(t).Range(mcost.Vector{0.5, 0.5, 0.5, 0.5}, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) != len(want) {
		t.Fatalf("HTTP returned %d matches, direct execution %d", len(resp.Matches), len(want))
	}
	for i, m := range resp.Matches {
		if m.OID != want[i].OID || m.Distance != want[i].Distance {
			t.Errorf("match %d diverges: HTTP (%d, %v) vs direct (%d, %v)",
				i, m.OID, m.Distance, want[i].OID, want[i].Distance)
		}
	}
}

func TestNNEndpointMatchesDirectExecution(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := post(t, s.Handler(), "/v1/nn", `{"query":[0.1,0.9,0.2,0.8],"k":5}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeResp[QueryResponse](t, rec)
	want, err := testIndex(t).NN(mcost.Vector{0.1, 0.9, 0.2, 0.8}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) != 5 || len(want) != 5 {
		t.Fatalf("want 5 neighbors, got HTTP %d direct %d", len(resp.Matches), len(want))
	}
	for i := range want {
		if resp.Matches[i].OID != want[i].OID || resp.Matches[i].Distance != want[i].Distance {
			t.Errorf("neighbor %d diverges", i)
		}
	}
}

func TestTypedRejections(t *testing.T) {
	s := newTestServer(t, Config{MaxBodyBytes: 256})
	h := s.Handler()
	cases := []struct {
		name, path, body string
		status           int
		code             string
	}{
		{"bad json", "/v1/range", `{"query":`, http.StatusBadRequest, "bad_json"},
		{"unknown field", "/v1/range", `{"query":[0,0,0,0],"radius":0.1,"bogus":1}`, http.StatusBadRequest, "bad_json"},
		{"missing query", "/v1/range", `{"radius":0.1}`, http.StatusBadRequest, "missing_query"},
		{"missing radius", "/v1/range", `{"query":[0,0,0,0]}`, http.StatusBadRequest, "missing_radius"},
		{"negative radius", "/v1/range", `{"query":[0,0,0,0],"radius":-0.5}`, http.StatusBadRequest, "bad_radius"},
		{"k on range", "/v1/range", `{"query":[0,0,0,0],"k":3}`, http.StatusBadRequest, "bad_radius"},
		{"wrong dim", "/v1/range", `{"query":[0,0],"radius":0.1}`, http.StatusBadRequest, "bad_query"},
		{"non-finite coord", "/v1/range", `{"query":[0,0,0,1e999],"radius":0.1}`, http.StatusBadRequest, "bad_query"},
		{"string query in vector space", "/v1/range", `{"query":"hi","radius":0.1}`, http.StatusBadRequest, "bad_query"},
		{"missing k", "/v1/nn", `{"query":[0,0,0,0]}`, http.StatusBadRequest, "missing_k"},
		{"zero k", "/v1/nn", `{"query":[0,0,0,0],"k":0}`, http.StatusBadRequest, "bad_k"},
		{"negative k", "/v1/nn", `{"query":[0,0,0,0],"k":-4}`, http.StatusBadRequest, "bad_k"},
		{"huge k", "/v1/nn", `{"query":[0,0,0,0],"k":100000}`, http.StatusBadRequest, "bad_k"},
		{"radius on nn", "/v1/nn", `{"query":[0,0,0,0],"radius":0.1}`, http.StatusBadRequest, "bad_k"},
		{"oversized body", "/v1/range", `{"query":[0,0,0,0],"radius":0.` + strings.Repeat("0", 400) + `1}`, http.StatusRequestEntityTooLarge, "body_too_large"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(t, h, tc.path, tc.body)
			if rec.Code != tc.status {
				t.Fatalf("status %d, want %d (%s)", rec.Code, tc.status, rec.Body.String())
			}
			resp := decodeResp[ErrorResponse](t, rec)
			if resp.Code != tc.code {
				t.Errorf("code %q, want %q", resp.Code, tc.code)
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	req := httptest.NewRequest(http.MethodGet, "/v1/range", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/range: status %d", rec.Code)
	}
	req = httptest.NewRequest(http.MethodPost, "/v1/stats", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/stats: status %d", rec.Code)
	}
}

func TestShed429CarriesPredictedCost(t *testing.T) {
	clk := newFakeClock()
	s := newTestServer(t, Config{
		// A bucket too small for even one query, never refilled (fake
		// clock stands still) — and pre-drained below burst so the
		// full-bucket bypass does not apply.
		Admission: AdmitConfig{NodeReadsPerSec: 0.001, BurstSeconds: 1, MaxQueueDelay: time.Millisecond},
		Clock:     clk.now,
	})
	h := s.Handler()
	// First request drains the (tiny) bucket via the full-bucket bypass.
	rec := post(t, h, "/v1/range", `{"query":[0.5,0.5,0.5,0.5],"radius":0.4}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("bypass request: status %d: %s", rec.Code, rec.Body.String())
	}
	rec = post(t, h, "/v1/range", `{"query":[0.5,0.5,0.5,0.5],"radius":0.4}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("expected 429, got %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeResp[ErrorResponse](t, rec)
	if resp.Code != "overloaded" {
		t.Errorf("code %q, want overloaded", resp.Code)
	}
	if resp.PredictedCost == nil || resp.PredictedCost.NodeReads <= 0 {
		t.Errorf("429 must carry the predicted cost, got %+v", resp.PredictedCost)
	}
	if resp.RetryAfterMS <= 0 {
		t.Errorf("429 must carry retry_after_ms, got %d", resp.RetryAfterMS)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Errorf("429 must set the Retry-After header")
	}
	snap := s.Registry().Snapshot()
	if snap.Counters["server.shed"] != 1 || snap.Counters["server.admitted"] != 1 {
		t.Errorf("admission counters wrong: %v", snap.Counters)
	}
}

func TestPartialResultsUnderTinyBudget(t *testing.T) {
	s := newTestServer(t, Config{BudgetSlack: 0.01})
	rec := post(t, s.Handler(), "/v1/range", `{"query":[0.5,0.5,0.5,0.5],"radius":0.9}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeResp[QueryResponse](t, rec)
	if !resp.Partial || resp.Degraded != "budget_exceeded" {
		t.Fatalf("expected a budget-degraded partial result, got %+v", resp)
	}
	// Partial results are clean: every match is a true match.
	for _, m := range resp.Matches {
		if m.Distance > 0.9 {
			t.Errorf("partial result outside radius: %+v", m)
		}
	}
	if s.Registry().Snapshot().Counters["server.partial"] != 1 {
		t.Errorf("partial counter not bumped")
	}
}

// TestStatsByteIdenticalToSharedEncoder pins the satellite contract:
// /v1/stats serves exactly the canonical obs envelope — the same bytes
// obs.WriteEnvelope produces for the same registry, which is the same
// encoder the experiments' machine-readable output runs through.
func TestStatsByteIdenticalToSharedEncoder(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("server.requests").Add(3)
	reg.Hist("server.batch_size", 4, 0, 64).Observe(2)
	s := newTestServer(t, Config{Registry: reg})
	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var want bytes.Buffer
	if err := obs.WriteEnvelope(&want, reg, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Body.Bytes(), want.Bytes()) {
		t.Errorf("/v1/stats not byte-identical to obs.WriteEnvelope:\n%s\nvs\n%s", rec.Body.Bytes(), want.Bytes())
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{})
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	resp := decodeResp[HealthResponse](t, rec)
	ix := testIndex(t)
	if resp.Status != "ok" || resp.Objects != ix.Size() || resp.Height != ix.Height() {
		t.Errorf("health response wrong: %+v", resp)
	}
}

func TestStringSpaceDecoding(t *testing.T) {
	d := dataset.Words(300, 11)
	ix, err := mcost.Build(d.Space, d.Objects, mcost.Options{Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecoderFor(d.Objects[0], d.Space.Bound)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Engine: ix, Decode: dec})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	word, _ := d.Objects[0].(string)
	body, _ := json.Marshal(map[string]interface{}{"query": word, "k": 3})
	rec := post(t, s.Handler(), "/v1/nn", string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeResp[QueryResponse](t, rec)
	if len(resp.Matches) != 3 {
		t.Fatalf("want 3 neighbors, got %d", len(resp.Matches))
	}
	if resp.Matches[0].Distance != 0 {
		t.Errorf("nearest neighbor of an indexed word must be itself")
	}
	// Rejections: wrong type and oversized strings.
	rec = post(t, s.Handler(), "/v1/nn", `{"query":[1,2],"k":3}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("vector query in string space: status %d", rec.Code)
	}
	rec = post(t, s.Handler(), "/v1/nn", `{"query":"`+strings.Repeat("x", 10_000)+`","k":3}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("oversized string: status %d", rec.Code)
	}
}

// drainBody makes sure handlers never hang a response writer.
func TestResponsesAreCompleteJSON(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := post(t, s.Handler(), "/v1/range", `{"query":[0.5,0.5,0.5,0.5],"radius":0.2}`)
	dec := json.NewDecoder(bytes.NewReader(rec.Body.Bytes()))
	var v interface{}
	if err := dec.Decode(&v); err != nil {
		t.Fatalf("response not valid JSON: %v", err)
	}
	if err := dec.Decode(&v); err != io.EOF {
		t.Fatalf("trailing data after response JSON: %v", err)
	}
}
