package server

import (
	"net/http/httptest"
	"testing"
	"time"

	"mcost/internal/dataset"
	"mcost/internal/metric"
	"mcost/internal/workload"
)

// testQueryPool regenerates the test index's dataset to use its objects
// as the generator's query pool.
func testQueryPool() []metric.Object {
	return dataset.Uniform(600, 4, 7).Objects
}

// The CI server-smoke job runs these two tests under -race: a serving
// stack driven end to end by the closed-loop HTTP workload generator,
// at low load (nothing sheds, nothing degrades) and under overload
// (admission sheds, and what is admitted stays clean).

func smokeWorkload() *workload.Workload {
	return &workload.Workload{Classes: []workload.QueryClass{
		{Name: "lookup", Weight: 3, Radius: 0.15},
		{Name: "discovery", Weight: 1, Radius: 0.4},
		{Name: "top5", Weight: 1, K: 5},
	}}
}

func TestServerSmokeLowLoad(t *testing.T) {
	ix := testIndex(t)
	s, err := New(Config{
		Engine: ix,
		Decode: VectorDecoder(4),
		// Generous admission: predicted load stays far under capacity.
		Admission: AdmitConfig{NodeReadsPerSec: 1e7, DistCalcsPerSec: 1e9},
		Batch:     BatchConfig{Window: 5 * time.Millisecond, MaxBatch: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rep, err := workload.RunHTTP(ts.URL, smokeWorkload(), testQueryPool(), workload.HTTPOptions{
		Requests: 120, Workers: 6, Seed: 3, Client: ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("low load: %+v", rep)
	if rep.Requests != 120 {
		t.Fatalf("issued %d requests, want 120", rep.Requests)
	}
	if rep.Shed != 0 {
		t.Errorf("low load must not shed, got %d", rep.Shed)
	}
	if rep.Errors != 0 || rep.Invalid != 0 {
		t.Errorf("low load produced errors=%d invalid=%d", rep.Errors, rep.Invalid)
	}
	if rep.OK+rep.Partial != 120 {
		t.Errorf("responses do not add up: %+v", rep)
	}
}

func TestServerSmokeOverloadShedsCleanly(t *testing.T) {
	ix := testIndex(t)
	s, err := New(Config{
		Engine: ix,
		Decode: VectorDecoder(4),
		// Tiny node-read capacity: the burst admits a handful, the rest
		// shed. A tight budget slack also degrades some admitted
		// queries, whose partial results must still be clean.
		Admission:   AdmitConfig{NodeReadsPerSec: 30, BurstSeconds: 1, MaxQueueDelay: time.Millisecond},
		BudgetSlack: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rep, err := workload.RunHTTP(ts.URL, smokeWorkload(), testQueryPool(), workload.HTTPOptions{
		Requests: 120, Workers: 12, Seed: 5, Backoff: true, MaxBackoff: time.Millisecond,
		Client: ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("overload: %+v", rep)
	if rep.Shed == 0 {
		t.Fatalf("overload must shed, got %+v", rep)
	}
	if rep.OK+rep.Partial == 0 {
		t.Fatalf("overload must still admit some queries, got %+v", rep)
	}
	if rep.Invalid != 0 {
		t.Fatalf("admitted queries returned %d out-of-radius matches under overload", rep.Invalid)
	}
	if rep.Errors != 0 {
		t.Fatalf("overload produced %d hard errors, want typed sheds only", rep.Errors)
	}
	snap := s.Registry().Snapshot()
	if snap.Counters["server.shed"] != int64(rep.Shed) {
		t.Errorf("server counted %d sheds, client saw %d", snap.Counters["server.shed"], rep.Shed)
	}
}
