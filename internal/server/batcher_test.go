package server

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"mcost/internal/budget"
	"mcost/internal/core"
	"mcost/internal/metric"
	"mcost/internal/mtree"
	"mcost/internal/obs"
)

// fakeEngine records the batches it is handed and answers each query
// with a single synthetic match whose OID encodes the dispatch order.
type fakeEngine struct {
	mu         sync.Mutex
	batches    [][]metric.Object
	lastBudget budget.Budget
	err        error
}

func (e *fakeEngine) PriceRange(radius float64) core.CostEstimate {
	return core.CostEstimate{Nodes: 10 * radius, Dists: 100 * radius}
}
func (e *fakeEngine) PriceNN(k int) core.CostEstimate {
	return core.CostEstimate{Nodes: float64(k), Dists: float64(10 * k)}
}

func (e *fakeEngine) run(qs []metric.Object, b budget.Budget, tr *obs.Trace) ([][]mtree.Match, error) {
	e.mu.Lock()
	e.batches = append(e.batches, qs)
	batchID := uint64(len(e.batches))
	e.lastBudget = b
	err := e.err
	e.mu.Unlock()
	// One simulated node fetch per batch plus one per query: the
	// amortization profile the counters should expose.
	tr.StartRangeBatch(0, len(qs))
	tr.Visit(1)
	out := make([][]mtree.Match, len(qs))
	for i := range qs {
		tr.Dist(1)
		out[i] = []mtree.Match{{OID: batchID*1000 + uint64(i), Distance: float64(i)}}
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (e *fakeEngine) RangeBatchTraced(ctx context.Context, qs []metric.Object, radius float64, b budget.Budget, tr *obs.Trace) ([][]mtree.Match, error) {
	return e.run(qs, b, tr)
}
func (e *fakeEngine) NNBatchTraced(ctx context.Context, qs []metric.Object, k int, b budget.Budget, tr *obs.Trace) ([][]mtree.Match, error) {
	return e.run(qs, b, tr)
}
func (e *fakeEngine) Size() int     { return 100 }
func (e *fakeEngine) NumNodes() int { return 10 }
func (e *fakeEngine) Height() int   { return 2 }
func (e *fakeEngine) PageSize() int { return 4096 }

func (e *fakeEngine) batchSizes() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]int, len(e.batches))
	for i, b := range e.batches {
		out[i] = len(b)
	}
	return out
}

func TestBatcherImmediateDispatchWithoutWindow(t *testing.T) {
	eng := &fakeEngine{}
	b := NewBatcher(eng, BatchConfig{}, nil, nil)
	res := b.Do(context.Background(), batchKey{radius: 0.1}, "q", budget.Budget{})
	if res.err != nil {
		t.Fatalf("Do: %v", res.err)
	}
	if res.batchSize != 1 || len(res.matches) != 1 {
		t.Fatalf("expected singleton dispatch, got %+v", res)
	}
}

func TestBatcherCoalescesBySizeAndKey(t *testing.T) {
	eng := &fakeEngine{}
	reg := obs.NewRegistry()
	b := NewBatcher(eng, BatchConfig{Window: time.Hour, MaxBatch: 4}, reg, nil)

	var wg sync.WaitGroup
	results := make([]callResult, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = b.Do(context.Background(), batchKey{radius: 0.5}, fmt.Sprintf("q%d", i), budget.Budget{MaxNodeReads: 5, MaxDistCalcs: 7})
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if res.err != nil {
			t.Fatalf("call %d: %v", i, res.err)
		}
		if res.batchSize != 4 {
			t.Errorf("call %d dispatched in batch of %d, want 4", i, res.batchSize)
		}
		if len(res.matches) != 1 {
			t.Errorf("call %d got %d matches, want its own 1", i, len(res.matches))
		}
	}
	for _, n := range eng.batchSizes() {
		if n != 4 {
			t.Errorf("engine saw batch of %d, want 4 (sizes %v)", n, eng.batchSizes())
		}
	}
	if got := eng.lastBudget; got.MaxNodeReads != 20 || got.MaxDistCalcs != 28 {
		t.Errorf("batch budget not the per-call sum: %+v", got)
	}
	snap := reg.Snapshot()
	if snap.Counters["server.batches"] != 2 || snap.Counters["server.batched_queries"] != 8 {
		t.Errorf("dispatch counters wrong: %v", snap.Counters)
	}
	// 2 batches × 1 shared visit — the amortized node-read accounting.
	if snap.Counters["server.node_reads"] != 2 || snap.Counters["server.dist_calcs"] != 8 {
		t.Errorf("trace totals wrong: %v", snap.Counters)
	}
}

func TestBatcherWindowFlushesPartialBatch(t *testing.T) {
	eng := &fakeEngine{}
	b := NewBatcher(eng, BatchConfig{Window: 20 * time.Millisecond, MaxBatch: 1000}, nil, nil)
	start := time.Now()
	res := b.Do(context.Background(), batchKey{radius: 0.5}, "lonely", budget.Budget{})
	if res.err != nil {
		t.Fatalf("Do: %v", res.err)
	}
	if res.batchSize != 1 {
		t.Fatalf("window flush dispatched batch of %d, want 1", res.batchSize)
	}
	if waited := time.Since(start); waited < 15*time.Millisecond {
		t.Errorf("dispatched after %v, before the window closed", waited)
	}
}

func TestBatcherDifferentKeysNeverMix(t *testing.T) {
	eng := &fakeEngine{}
	b := NewBatcher(eng, BatchConfig{Window: 30 * time.Millisecond, MaxBatch: 8}, nil, nil)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(2)
		go func() { defer wg.Done(); b.Do(context.Background(), batchKey{radius: 0.1}, "a", budget.Budget{}) }()
		go func() { defer wg.Done(); b.Do(context.Background(), batchKey{nn: true, k: 3}, "b", budget.Budget{}) }()
	}
	wg.Wait()
	for _, batch := range eng.batches {
		first := batch[0].(string)
		for _, q := range batch {
			if q.(string) != first {
				t.Fatalf("mixed batch: %v", batch)
			}
		}
	}
}

func TestBatcherUnlimitedCallOpensBatchBudget(t *testing.T) {
	calls := []*call{
		{b: budget.Budget{MaxNodeReads: 5, MaxDistCalcs: 5}},
		{b: budget.Budget{}}, // unlimited
		{b: budget.Budget{MaxNodeReads: 7, MaxDistCalcs: 7}},
	}
	if got := batchBudget(calls); !got.Unlimited() {
		t.Fatalf("an unlimited companion must leave the batch unlimited, got %+v", got)
	}
}

func TestBatcherCloseFlushesPending(t *testing.T) {
	eng := &fakeEngine{}
	b := NewBatcher(eng, BatchConfig{Window: time.Hour, MaxBatch: 1000}, nil, nil)
	done := make(chan callResult, 1)
	go func() { done <- b.Do(context.Background(), batchKey{radius: 0.2}, "q", budget.Budget{}) }()
	// Wait for the call to be queued, then close.
	for {
		b.mu.Lock()
		n := len(b.pending)
		b.mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	b.Close()
	res := <-done
	if res.err != nil || len(res.matches) != 1 {
		t.Fatalf("close must flush pending calls cleanly, got %+v", res)
	}
	if res2 := b.Do(context.Background(), batchKey{radius: 0.2}, "q", budget.Budget{}); res2.err == nil {
		// Window>0 path closed; immediate path would still work, so only
		// the queued path errors.
		t.Fatalf("Do after Close must fail for queued dispatch")
	}
}
