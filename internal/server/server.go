package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mcost/internal/budget"
	"mcost/internal/core"
	"mcost/internal/metric"
	"mcost/internal/mtree"
	"mcost/internal/obs"
	"mcost/internal/rescache"
)

// DefaultBudgetSlack mirrors the facade's default: an admitted query
// may spend this multiple of its own L-MCM prediction before being
// stopped with partial results.
const DefaultBudgetSlack = 4.0

// DefaultMaxBodyBytes caps request bodies (1 MiB).
const DefaultMaxBodyBytes = 1 << 20

// DefaultWedgeThreshold is how long a write may hold (or wait on) the
// writer lock before /healthz starts reporting the node wedged.
const DefaultWedgeThreshold = 5 * time.Second

// retryJitterFrac spreads each 429's retry_after_ms over
// [base, base·(1+frac)] so a recovering node is not hit by every shed
// client on the same tick.
const retryJitterFrac = 0.25

// Config assembles a Server.
type Config struct {
	// Engine answers and prices the queries (required).
	Engine Engine
	// Decode parses the "query" field (required; see DecoderFor).
	Decode ObjectDecoder
	// Admission sizes the cost token bucket (zero = admit everything).
	Admission AdmitConfig
	// Batch tunes the micro-batcher (zero = dispatch immediately).
	Batch BatchConfig
	// Cache, when non-nil, is probed between pricing and admission: a
	// containment hit answers the query exactly from a recent result,
	// spending no admission tokens and no engine work. Misses fall
	// through unchanged and populate the cache from complete, error-free
	// responses only.
	Cache *rescache.Cache
	// BudgetSlack scales each request's execution budget off its own
	// prediction: budget = prediction × slack (0 picks
	// DefaultBudgetSlack; negative disables budgets).
	BudgetSlack float64
	// MaxBodyBytes caps request bodies (0 picks DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// MaxK caps k-NN requests (0 picks the indexed object count).
	MaxK int
	// PlanCeiling rejects queries whose cheapest plan — node reads plus
	// distance computations of whichever engine the advisor would pick —
	// prices above it, with a typed 422 plan_rejected. Zero disables the
	// ceiling. Requires a planning engine (one satisfying Planner);
	// otherwise it is ignored.
	PlanCeiling float64
	// Registry receives the server metrics (nil allocates a fresh one).
	Registry *obs.Registry
	// Clock is a test hook for the admission bucket and queue timing
	// (nil = time.Now).
	Clock func() time.Time
	// Debug mounts http.DefaultServeMux under /debug/ — net/http/pprof
	// and expvar when the binary imports them.
	Debug bool
	// NotReady starts the server unready: /healthz answers 503
	// "building" until SetReady(true). Embedders that construct the
	// server before the engine finishes warming use this so a router's
	// health loop does not route to them early.
	NotReady bool
	// WedgeThreshold is how long a write may hold or wait on the writer
	// lock before /healthz reports 503 "wedged" (0 picks
	// DefaultWedgeThreshold; negative disables the check).
	WedgeThreshold time.Duration
	// JitterSeed seeds the 429 retry_after_ms jitter (0 seeds from the
	// clock; fixed seeds make shed-storm tests reproducible).
	JitterSeed int64
}

// Server is the cost-aware HTTP serving layer. Create with New, expose
// with Handler, and Close when done (flushes the micro-batcher).
type Server struct {
	eng Engine
	// base is the unwrapped engine handed to New — the value optional
	// interfaces (Mutable, RecalReporter) are discovered on. When the
	// engine is mutable, eng is a lockedEngine over base and wmu.
	base    Engine
	mut     Mutable
	wmu     sync.RWMutex
	dec     ObjectDecoder
	adm     *Admitter
	bat     *Batcher
	cache   *rescache.Cache
	reg     *obs.Registry
	slack   float64
	maxBody int64
	maxK    int
	debug   bool
	model   ModelReporter
	planner Planner
	ceiling float64
	clock   func() time.Time

	// Readiness and liveness state behind /healthz: ready flips once
	// the engine is warm; writes tracks in-flight writers so a wedged
	// writer lock surfaces as 503 instead of an eternally-"ok" node.
	ready       atomic.Bool
	wedgeThresh time.Duration
	writes      writeTracker

	// jrng jitters 429 retry_after_ms (guarded by jmu).
	jmu  sync.Mutex
	jrng *rand.Rand

	cRequests  *obs.Counter
	cAdmitted  *obs.Counter
	cShed      *obs.Counter
	cRejected  *obs.Counter
	cPartial   *obs.Counter
	cErrors    *obs.Counter
	cPredNode  *obs.Counter
	cPredDist  *obs.Counter
	cCacheHit  *obs.Counter
	cCacheMiss *obs.Counter
	cProbeDist *obs.Counter
	cSavedNode *obs.Counter
	cInserts   *obs.Counter
	cDeletes   *obs.Counter

	// Plan decision counters (only move when the engine is a Planner).
	cPlanTree     *obs.Counter
	cPlanScan     *obs.Counter
	cPlanRejected *obs.Counter
}

// New validates cfg and assembles the server.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("server: nil engine")
	}
	if cfg.Decode == nil {
		return nil, errors.New("server: nil object decoder")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	slack := cfg.BudgetSlack
	if slack == 0 {
		slack = DefaultBudgetSlack
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	maxK := cfg.MaxK
	if maxK <= 0 {
		maxK = cfg.Engine.Size()
	}
	wedge := cfg.WedgeThreshold
	if wedge == 0 {
		wedge = DefaultWedgeThreshold
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	jseed := cfg.JitterSeed
	if jseed == 0 {
		jseed = clock().UnixNano()
	}
	s := &Server{
		base:        cfg.Engine,
		dec:         cfg.Decode,
		adm:         NewAdmitter(cfg.Admission, cfg.Clock),
		cache:       cfg.Cache,
		reg:         reg,
		slack:       slack,
		maxBody:     maxBody,
		maxK:        maxK,
		debug:       cfg.Debug,
		clock:       clock,
		wedgeThresh: wedge,
		jrng:        rand.New(rand.NewSource(jseed)),
		cRequests:   reg.Counter("server.requests"),
		cAdmitted:   reg.Counter("server.admitted"),
		cShed:       reg.Counter("server.shed"),
		cRejected:   reg.Counter("server.rejected"),
		cPartial:    reg.Counter("server.partial"),
		cErrors:     reg.Counter("server.errors"),
		cPredNode:   reg.Counter("server.predicted_node_reads"),
		cPredDist:   reg.Counter("server.predicted_dist_calcs"),
		cCacheHit:   reg.Counter("server.cache_hits"),
		cCacheMiss:  reg.Counter("server.cache_misses"),
		cProbeDist:  reg.Counter("server.cache_probe_dists"),
		cSavedNode:  reg.Counter("server.cache_saved_node_reads"),
		cInserts:    reg.Counter("server.inserts"),
		cDeletes:    reg.Counter("server.deletes"),
		ceiling:     cfg.PlanCeiling,
	}
	s.ready.Store(!cfg.NotReady)
	// A mutable engine gets the readers-writer guard: queries (pricing
	// and batch dispatch) share the read side, /v1/insert and /v1/delete
	// take the write side. Read-only engines keep the zero-cost path.
	s.eng = cfg.Engine
	if mut, ok := cfg.Engine.(Mutable); ok {
		s.mut = mut
		s.eng = &lockedEngine{eng: cfg.Engine, mu: &s.wmu}
	}
	if mr, ok := cfg.Engine.(ModelReporter); ok {
		s.model = mr
	}
	if pl, ok := cfg.Engine.(Planner); ok {
		s.planner = pl
		s.cPlanTree = reg.Counter("server.plan_tree")
		s.cPlanScan = reg.Counter("server.plan_scan")
		s.cPlanRejected = reg.Counter("server.plan_rejected")
	}
	s.bat = NewBatcher(s.eng, cfg.Batch, reg, cfg.Clock)
	return s, nil
}

// SetReady flips the readiness /healthz reports: false returns the node
// to 503 "building", true marks it routable.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Registry returns the server's metrics registry (the one /v1/stats
// serves).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Close flushes the micro-batcher; pending queries complete.
func (s *Server) Close() { s.bat.Close() }

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/range", s.handleQuery(false))
	mux.HandleFunc("/v1/nn", s.handleQuery(true))
	mux.HandleFunc("/v1/insert", s.handleWrite(true))
	mux.HandleFunc("/v1/delete", s.handleWrite(false))
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/model", s.handleModel)
	mux.HandleFunc("/healthz", s.handleHealth)
	if s.debug {
		mux.Handle("/debug/", http.DefaultServeMux)
	}
	return mux
}

// CostJSON is a predicted cost on the wire.
type CostJSON struct {
	NodeReads float64 `json:"node_reads"`
	DistCalcs float64 `json:"dist_calcs"`
}

func costJSON(est core.CostEstimate) CostJSON {
	return CostJSON{NodeReads: est.Nodes, DistCalcs: est.Dists}
}

// MatchJSON is one query result on the wire.
type MatchJSON struct {
	OID      uint64        `json:"oid"`
	Distance float64       `json:"distance"`
	Object   metric.Object `json:"object"`
}

// QueryResponse is the 200 body of /v1/range and /v1/nn.
type QueryResponse struct {
	Matches []MatchJSON `json:"matches"`
	// Partial reports a budget- or deadline-stopped query: every match
	// is valid, completeness was traded away. Degraded names the cause.
	Partial  bool   `json:"partial,omitempty"`
	Degraded string `json:"degraded,omitempty"`
	// Predicted is the L-MCM cost this query was admitted under.
	Predicted CostJSON `json:"predicted"`
	// Cached reports the answer was served exactly from the result
	// cache: no traversal ran and no admission tokens were spent. The
	// matches are bit-identical to what direct execution would return.
	Cached bool `json:"cached,omitempty"`
	// BatchSize and QueuedMS expose the micro-batcher's work: how many
	// queries shared the dispatch and how long this one waited. Both are
	// zero on a cache hit — the query never reached the batcher.
	BatchSize int     `json:"batch_size"`
	QueuedMS  float64 `json:"queued_ms"`
	// Plan is the advisor's engine choice with both priced alternatives
	// (only present on planning engines, and absent on cache hits — a
	// cached answer runs on no engine at all).
	Plan *PlanJSON `json:"plan,omitempty"`
}

// ErrorResponse is every non-200 body.
type ErrorResponse struct {
	Code  string `json:"code"`
	Error string `json:"error"`
	// PredictedCost accompanies a 429 so clients can back off
	// proportionally to what they asked for.
	PredictedCost *CostJSON `json:"predicted_cost,omitempty"`
	RetryAfterMS  int64     `json:"retry_after_ms,omitempty"`
}

// apiError is a typed request failure carrying its HTTP status.
type apiError struct {
	status int
	code   string
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(code, format string, args ...interface{}) *apiError {
	return &apiError{status: http.StatusBadRequest, code: code, msg: fmt.Sprintf(format, args...)}
}

// queryRequest is the decoded, validated body of a query endpoint.
type queryRequest struct {
	q      metric.Object
	radius float64
	k      int
}

// rawQueryRequest is the wire shape before validation.
type rawQueryRequest struct {
	Query  json.RawMessage `json:"query"`
	Radius *float64        `json:"radius"`
	K      *int            `json:"k"`
}

// decodeQuery parses and strictly validates a query body. Every invalid
// input yields a typed *apiError with a 4xx status; nothing is clamped:
// a negative radius or k is rejected, never coerced to a runnable
// query.
func (s *Server) decodeQuery(r io.Reader, nn bool) (queryRequest, *apiError) {
	var out queryRequest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var raw rawQueryRequest
	if err := dec.Decode(&raw); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return out, &apiError{status: http.StatusRequestEntityTooLarge, code: "body_too_large",
				msg: fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit)}
		}
		return out, badRequest("bad_json", "invalid request body: %v", err)
	}
	if dec.More() {
		return out, badRequest("bad_json", "trailing data after request body")
	}
	if len(raw.Query) == 0 {
		return out, badRequest("missing_query", "request has no \"query\" field")
	}
	q, err := s.dec(raw.Query)
	if err != nil {
		return out, badRequest("bad_query", "%v", err)
	}
	out.q = q
	if nn {
		if raw.Radius != nil {
			return out, badRequest("bad_k", "\"radius\" is not a k-NN parameter; POST /v1/range instead")
		}
		if raw.K == nil {
			return out, badRequest("missing_k", "k-NN request has no \"k\" field")
		}
		k := *raw.K
		if k <= 0 {
			return out, badRequest("bad_k", "k must be positive, got %d", k)
		}
		if k > s.maxK {
			return out, badRequest("bad_k", "k = %d exceeds the maximum %d", k, s.maxK)
		}
		out.k = k
		return out, nil
	}
	if raw.K != nil {
		return out, badRequest("bad_radius", "\"k\" is not a range parameter; POST /v1/nn instead")
	}
	if raw.Radius == nil {
		return out, badRequest("missing_radius", "range request has no \"radius\" field")
	}
	rad := *raw.Radius
	if math.IsNaN(rad) || math.IsInf(rad, 0) {
		return out, badRequest("bad_radius", "radius must be finite")
	}
	if rad < 0 {
		return out, badRequest("bad_radius", "radius must be non-negative, got %g", rad)
	}
	out.radius = rad
	return out, nil
}

// budgetFor converts a prediction into the per-request execution cap:
// prediction × slack, rounded up, floored at the tree height so an
// admitted query can always walk root to leaf. Negative slack disables
// the budget.
func (s *Server) budgetFor(est core.CostEstimate) budget.Budget {
	if s.slack < 0 {
		return budget.Budget{}
	}
	floor := float64(s.eng.Height())
	nodes := math.Ceil(est.Nodes * s.slack)
	if nodes < floor {
		nodes = floor
	}
	dists := math.Ceil(est.Dists * s.slack)
	if dists < floor {
		dists = floor
	}
	return budget.Budget{MaxNodeReads: int64(nodes), MaxDistCalcs: int64(dists)}
}

// handleQuery prices, admits, batches, and executes one query.
func (s *Server) handleQuery(nn bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.cRequests.Inc()
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			s.reject(w, &apiError{status: http.StatusMethodNotAllowed, code: "method_not_allowed",
				msg: "query endpoints accept POST only"})
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		req, aerr := s.decodeQuery(r.Body, nn)
		if aerr != nil {
			s.reject(w, aerr)
			return
		}

		// Price first: the prediction is both the admission charge and
		// the execution budget seed.
		var est core.CostEstimate
		if nn {
			est = s.eng.PriceNN(req.k)
		} else {
			est = s.eng.PriceRange(req.radius)
		}
		s.cPredNode.Add(int64(math.Ceil(est.Nodes)))
		s.cPredDist.Add(int64(math.Ceil(est.Dists)))

		// Probe the result cache before admission: a containment hit is
		// exact and nearly free, so it must not spend bucket tokens the
		// traversal it avoids would have charged. The epoch read here
		// also stamps any entry this request later Puts: a write racing
		// the execution bumps the epoch first, so the stale entry can
		// never answer a probe.
		var cacheEpoch uint64
		if s.cache != nil {
			cacheEpoch = s.cache.Epoch()
			var pr rescache.Probe
			if nn {
				pr = s.cache.GetNN(req.q, req.k, est)
			} else {
				pr = s.cache.GetRange(req.q, req.radius, est)
			}
			s.cProbeDist.Add(int64(pr.Dists))
			if pr.Hit {
				s.cCacheHit.Inc()
				s.cSavedNode.Add(int64(math.Ceil(est.Nodes)))
				resp := QueryResponse{
					Predicted: costJSON(est),
					Cached:    true,
					Matches:   make([]MatchJSON, len(pr.Matches)),
				}
				for i, m := range pr.Matches {
					resp.Matches[i] = MatchJSON{OID: m.OID, Distance: m.Distance, Object: m.Object}
				}
				s.writeJSON(w, http.StatusOK, resp)
				return
			}
			s.cCacheMiss.Inc()
		}

		// Plan after the cache (a hit executes nothing, so the ceiling
		// has nothing to guard) and before admission: a query whose
		// cheapest plan already exceeds the operator's ceiling must not
		// drain bucket tokens on its way to a rejection.
		var plan *PlanJSON
		if s.planner != nil {
			d, aerr := s.planQuery(nn, req)
			if aerr != nil {
				if aerr.code == "plan_rejected" {
					s.cPlanRejected.Inc()
					s.cRejected.Inc()
					best := d.Predicted()
					cost := costJSON(best)
					s.writeJSON(w, aerr.status, ErrorResponse{
						Code: aerr.code, Error: aerr.msg, PredictedCost: &cost,
					})
					return
				}
				s.reject(w, aerr)
				return
			}
			plan = planJSON(d)
		}

		dec := s.adm.Admit(est)
		if !dec.Admit {
			s.cShed.Inc()
			cost := costJSON(est)
			retryMS := s.jitterRetryMS(dec.RetryAfter.Milliseconds())
			retryAfter := time.Duration(retryMS) * time.Millisecond
			w.Header().Set("Retry-After", fmt.Sprintf("%d", (retryAfter+time.Second-1)/time.Second))
			s.writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
				Code:          "overloaded",
				Error:         "predicted cost exceeds the server's admission budget; back off and retry",
				PredictedCost: &cost,
				RetryAfterMS:  retryMS,
			})
			return
		}
		s.cAdmitted.Inc()

		key := batchKey{nn: nn, radius: req.radius, k: req.k}
		res := s.bat.Do(r.Context(), key, req.q, s.budgetFor(est))
		resp := QueryResponse{
			Predicted: costJSON(est),
			BatchSize: res.batchSize,
			QueuedMS:  res.queued.Seconds() * 1000,
			Plan:      plan,
		}
		switch {
		case res.err == nil:
			// Only complete, error-free results may populate the cache: a
			// budget- or deadline-stopped partial set verifies no ball, and
			// a failed dispatch verifies nothing at all.
			if s.cache != nil {
				if nn {
					s.cache.PutNNAt(req.q, req.k, res.matches, est, cacheEpoch)
				} else {
					s.cache.PutRangeAt(req.q, req.radius, res.matches, est, cacheEpoch)
				}
			}
		case errors.Is(res.err, budget.ErrExceeded):
			s.cPartial.Inc()
			resp.Partial = true
			resp.Degraded = "budget_exceeded"
		case errors.Is(res.err, context.DeadlineExceeded), errors.Is(res.err, context.Canceled):
			s.cPartial.Inc()
			resp.Partial = true
			resp.Degraded = "deadline"
		default:
			s.cErrors.Inc()
			s.writeJSON(w, http.StatusInternalServerError, ErrorResponse{
				Code: "internal", Error: res.err.Error(),
			})
			return
		}
		resp.Matches = make([]MatchJSON, len(res.matches))
		for i, m := range res.matches {
			resp.Matches[i] = MatchJSON{OID: m.OID, Distance: m.Distance, Object: m.Object}
		}
		s.writeJSON(w, http.StatusOK, resp)
	}
}

// handleStats serves the metrics registry as the canonical obs
// envelope — byte-identical to obs.WriteEnvelope over the same
// registry, the single encoder every metrics emitter shares.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.reject(w, &apiError{status: http.StatusMethodNotAllowed, code: "method_not_allowed",
			msg: "stats endpoint accepts GET only"})
		return
	}
	s.refreshRecalGauges()
	s.refreshAdvisorGauges()
	var buf bytes.Buffer
	if err := obs.WriteEnvelope(&buf, s.reg, nil); err != nil {
		s.cErrors.Inc()
		s.writeJSON(w, http.StatusInternalServerError, ErrorResponse{Code: "internal", Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// jitterRetryMS spreads a 429's backoff over [base, base·(1+frac)]:
// clients shed together must not all retry on the same tick against a
// node that is just recovering.
func (s *Server) jitterRetryMS(base int64) int64 {
	if base < 1 {
		base = 1
	}
	span := int64(float64(base) * retryJitterFrac)
	if span <= 0 {
		return base
	}
	s.jmu.Lock()
	j := s.jrng.Int63n(span + 1)
	s.jmu.Unlock()
	return base + j
}

// HealthResponse is the /healthz body. Status distinguishes readiness
// from liveness: "ok" (200) means route to me; "building" (503) means
// the index is not warm yet; "wedged" (503) means a write has held or
// waited on the writer lock past the threshold, so queries would queue
// behind it — a router's health loop should fail over instead.
type HealthResponse struct {
	Status   string `json:"status"`
	Ready    bool   `json:"ready"`
	Objects  int    `json:"objects,omitempty"`
	Nodes    int    `json:"nodes,omitempty"`
	Height   int    `json:"height,omitempty"`
	PageSize int    `json:"page_size,omitempty"`
	// WedgedMS reports how long the oldest in-flight write has been
	// holding or waiting on the writer lock (only set when wedged).
	WedgedMS float64 `json:"wedged_ms,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		s.writeJSON(w, http.StatusServiceUnavailable, HealthResponse{Status: "building"})
		return
	}
	if s.wedgeThresh > 0 {
		if age := s.writes.oldest(s.clock()); age > s.wedgeThresh {
			s.writeJSON(w, http.StatusServiceUnavailable, HealthResponse{
				Status: "wedged", Ready: true, WedgedMS: age.Seconds() * 1000,
			})
			return
		}
	}
	s.writeJSON(w, http.StatusOK, HealthResponse{
		Status:   "ok",
		Ready:    true,
		Objects:  s.eng.Size(),
		Nodes:    s.eng.NumNodes(),
		Height:   s.eng.Height(),
		PageSize: s.eng.PageSize(),
	})
}

// handleModel serves the engine's wire-exportable model summary — the
// per-shard F̂/L-MCM state a scatter-gather router prices and prunes
// with. Engines without one (plain trees) answer a typed 404.
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.reject(w, &apiError{status: http.StatusMethodNotAllowed, code: "method_not_allowed",
			msg: "model endpoint accepts GET only"})
		return
	}
	if s.model == nil {
		s.reject(w, &apiError{status: http.StatusNotFound, code: "no_model",
			msg: "this engine does not export a model summary"})
		return
	}
	raw, err := s.model.ModelSummary()
	if err != nil {
		s.cErrors.Inc()
		s.writeJSON(w, http.StatusInternalServerError, ErrorResponse{Code: "internal", Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(raw)
}

// BootingHandler answers for a node whose engine is still building:
// /healthz says 503 "building" and every other route 503s with a typed
// error. Binaries listen with it immediately and swap in the real
// handler when the build completes, so health loops see the node early
// but never route work to it.
func BootingHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeBootJSON(w, HealthResponse{Status: "building"})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeBootJSON(w, ErrorResponse{Code: "building", Error: "index is still building; retry shortly"})
	})
	return mux
}

func writeBootJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) reject(w http.ResponseWriter, aerr *apiError) {
	s.cRejected.Inc()
	s.writeJSON(w, aerr.status, ErrorResponse{Code: aerr.code, Error: aerr.msg})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing to do but drop the connection state.
		_ = err
	}
}

// EngineMatches converts wire matches back to engine matches — the
// helper load generators and tests use to compare HTTP results with
// direct in-process execution. OIDs and distances round-trip exactly;
// objects come back as decoded JSON values.
func (r *QueryResponse) EngineMatches() []mtree.Match {
	out := make([]mtree.Match, len(r.Matches))
	for i, m := range r.Matches {
		out[i] = mtree.Match{OID: m.OID, Distance: m.Distance, Object: m.Object}
	}
	return out
}
