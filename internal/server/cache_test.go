package server

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mcost"
	"mcost/internal/budget"
	"mcost/internal/metric"
	"mcost/internal/mtree"
	"mcost/internal/obs"
	"mcost/internal/rescache"
	"mcost/internal/workload"
)

// testCache builds a result cache speaking the test index's exact
// metric.
func testCache(t testing.TB, entries int) *rescache.Cache {
	t.Helper()
	c, err := rescache.New(rescache.Config{Entries: entries, Dist: testIndex(t).Space().Distance})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestE2ECacheHitsBypassAdmission pins the token accounting: a cache
// hit answers before the admitter runs, so repeats of a cached query
// keep succeeding after the token bucket is exhausted — and a fresh
// query immediately sheds, proving the bucket really was empty the
// whole time the hits were served.
func TestE2ECacheHitsBypassAdmission(t *testing.T) {
	ix := testIndex(t)
	cache := testCache(t, 16)
	s, err := New(Config{
		Engine: ix,
		Decode: VectorDecoder(4),
		// The burst covers exactly one admission; refill is effectively
		// zero for the lifetime of the test.
		Admission: AdmitConfig{NodeReadsPerSec: 1e-9, BurstSeconds: 1, MaxQueueDelay: time.Millisecond},
		Cache:     cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	q := mcost.Vector{0.3, 0.6, 0.2, 0.9}
	const radius = 0.35
	want, err := ix.Range(q, radius)
	if err != nil {
		t.Fatal(err)
	}
	body := map[string]interface{}{"query": q, "radius": radius}

	// First request spends the whole burst and populates the cache.
	resp, payload := postJSON(t, ts.Client(), ts.URL+"/v1/range", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first query: status %d: %s", resp.StatusCode, payload)
	}
	var qr QueryResponse
	if err := json.Unmarshal(payload, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Cached {
		t.Fatalf("first query cannot be a cache hit: %s", payload)
	}

	// Repeats are exact containment hits: 200, marked cached, never
	// touching admitter or batcher, bit-identical to direct execution.
	const repeats = 4
	for i := 0; i < repeats; i++ {
		resp, payload := postJSON(t, ts.Client(), ts.URL+"/v1/range", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("repeat %d: status %d with an exhausted bucket — the hit charged tokens: %s",
				i, resp.StatusCode, payload)
		}
		var qr QueryResponse
		if err := json.Unmarshal(payload, &qr); err != nil {
			t.Fatal(err)
		}
		if !qr.Cached {
			t.Fatalf("repeat %d not served from cache: %s", i, payload)
		}
		if qr.BatchSize != 0 || qr.QueuedMS != 0 {
			t.Fatalf("cache hit reports batcher work: %s", payload)
		}
		if len(qr.Matches) != len(want) {
			t.Fatalf("repeat %d: cache served %d matches, direct %d", i, len(qr.Matches), len(want))
		}
		for j := range want {
			if qr.Matches[j].OID != want[j].OID ||
				math.Float64bits(qr.Matches[j].Distance) != math.Float64bits(want[j].Distance) {
				t.Fatalf("repeat %d match %d not bit-identical to direct execution", i, j)
			}
		}
	}

	// A query the cache cannot prove must fall through to admission and
	// shed against the empty bucket.
	resp, payload = postJSON(t, ts.Client(), ts.URL+"/v1/range",
		map[string]interface{}{"query": mcost.Vector{0.9, 0.1, 0.8, 0.1}, "radius": 0.4})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("uncached query against an empty bucket: status %d: %s", resp.StatusCode, payload)
	}

	snap := s.Registry().Snapshot()
	if snap.Counters["server.admitted"] != 1 {
		t.Fatalf("admitted %d queries, want exactly the one miss", snap.Counters["server.admitted"])
	}
	if snap.Counters["server.cache_hits"] != repeats {
		t.Fatalf("server.cache_hits = %d, want %d", snap.Counters["server.cache_hits"], repeats)
	}
	if snap.Counters["server.cache_saved_node_reads"] <= 0 {
		t.Fatalf("cache hits saved no node reads: %v", snap.Counters)
	}
}

// TestE2ECacheZipfHitRate drives the Zipf-shaped closed-loop workload —
// the traffic a result cache exists for — and pins the acceptance
// floor: at least half the requests served from cache, with zero
// errors and zero invalid matches.
func TestE2ECacheZipfHitRate(t *testing.T) {
	cache := testCache(t, 256)
	s, err := New(Config{
		Engine:    testIndex(t),
		Decode:    VectorDecoder(4),
		Admission: AdmitConfig{NodeReadsPerSec: 1e7, DistCalcsPerSec: 1e9},
		Cache:     cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rep, err := workload.RunHTTP(ts.URL, smokeWorkload(), testQueryPool(), workload.HTTPOptions{
		Requests: 240, Workers: 6, Seed: 11, ZipfS: 1.5, Client: ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("zipf: %+v (hit rate %.0f%%)", rep, 100*float64(rep.CacheHits)/float64(rep.Requests))
	if rep.Errors != 0 || rep.Invalid != 0 || rep.Shed != 0 {
		t.Fatalf("zipf run must be clean: %+v", rep)
	}
	if rep.OK+rep.Partial != rep.Requests {
		t.Fatalf("responses do not add up: %+v", rep)
	}
	if 2*rep.CacheHits < rep.Requests {
		t.Fatalf("zipf traffic hit the cache only %d/%d times, want >= 50%%", rep.CacheHits, rep.Requests)
	}
	snap := s.Registry().Snapshot()
	if snap.Counters["server.cache_hits"] != int64(rep.CacheHits) {
		t.Fatalf("server counted %d hits, clients saw %d",
			snap.Counters["server.cache_hits"], rep.CacheHits)
	}
	if snap.Counters["server.cache_misses"] != int64(rep.Requests-rep.CacheHits) {
		t.Fatalf("server counted %d misses for %d uncached requests",
			snap.Counters["server.cache_misses"], rep.Requests-rep.CacheHits)
	}
}

// TestCacheNeverPopulatedFromPartialResults pins the population guard:
// budget-stopped (partial) result sets verify no containment ball and
// must never enter the cache.
func TestCacheNeverPopulatedFromPartialResults(t *testing.T) {
	cache := testCache(t, 16)
	s, err := New(Config{
		Engine: testIndex(t),
		Decode: VectorDecoder(4),
		// A budget floored at the tree height: wide queries always stop
		// early with budget.ErrExceeded partials.
		BudgetSlack: 1e-6,
		Cache:       cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 4; i++ {
		q := mcost.Vector{0.1 * float64(i), 0.5, 0.5, 0.5}
		resp, payload := postJSON(t, ts.Client(), ts.URL+"/v1/range",
			map[string]interface{}{"query": q, "radius": 0.45})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d: %s", i, resp.StatusCode, payload)
		}
		var qr QueryResponse
		if err := json.Unmarshal(payload, &qr); err != nil {
			t.Fatal(err)
		}
		if !qr.Partial || qr.Degraded != "budget_exceeded" {
			t.Fatalf("query %d was not budget-degraded (%s); the test needs partials", i, payload)
		}
	}
	if n := cache.Len(); n != 0 {
		t.Fatalf("%d partial result sets entered the cache", n)
	}
}

// faultEngine fails every dispatch the way a broken storage layer
// would: a hard error with empty per-query sets.
type faultEngine struct {
	Engine
}

func (e *faultEngine) RangeBatchTraced(ctx context.Context, qs []metric.Object, radius float64, b budget.Budget, tr *obs.Trace) ([][]mtree.Match, error) {
	out := make([][]mtree.Match, len(qs))
	for i := range out {
		out[i] = []mtree.Match{}
	}
	return out, errors.New("injected page fault")
}

func (e *faultEngine) NNBatchTraced(ctx context.Context, qs []metric.Object, k int, b budget.Budget, tr *obs.Trace) ([][]mtree.Match, error) {
	out := make([][]mtree.Match, len(qs))
	for i := range out {
		out[i] = []mtree.Match{}
	}
	return out, errors.New("injected page fault")
}

// TestCacheNeverPopulatedFromFailedDispatches pins the other half of
// the population guard: a failed engine dispatch (500) must leave the
// cache untouched.
func TestCacheNeverPopulatedFromFailedDispatches(t *testing.T) {
	cache := testCache(t, 16)
	s, err := New(Config{
		Engine: &faultEngine{Engine: testIndex(t)},
		Decode: VectorDecoder(4),
		Cache:  cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i, body := range []map[string]interface{}{
		{"query": mcost.Vector{0.2, 0.4, 0.6, 0.8}, "radius": 0.3},
		{"query": mcost.Vector{0.2, 0.4, 0.6, 0.8}, "k": 3},
	} {
		path := ts.URL + "/v1/range"
		if _, nn := body["k"]; nn {
			path = ts.URL + "/v1/nn"
		}
		resp, payload := postJSON(t, ts.Client(), path, body)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("faulted dispatch %d: status %d: %s", i, resp.StatusCode, payload)
		}
	}
	if n := cache.Len(); n != 0 {
		t.Fatalf("%d failed dispatches entered the cache", n)
	}
}

// TestServerSmokeCacheEnabled is the CI smoke leg with the cache in
// front of the full stack — admission, micro-batching, Zipf traffic —
// under -race: everything stays clean and the cache actually serves.
func TestServerSmokeCacheEnabled(t *testing.T) {
	cache := testCache(t, 256)
	s, err := New(Config{
		Engine:    testIndex(t),
		Decode:    VectorDecoder(4),
		Admission: AdmitConfig{NodeReadsPerSec: 1e7, DistCalcsPerSec: 1e9},
		Batch:     BatchConfig{Window: 5 * time.Millisecond, MaxBatch: 8},
		Cache:     cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rep, err := workload.RunHTTP(ts.URL, smokeWorkload(), testQueryPool(), workload.HTTPOptions{
		Requests: 120, Workers: 6, Seed: 3, ZipfS: 1.4, Client: ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cache-enabled smoke: %+v", rep)
	if rep.Shed != 0 || rep.Errors != 0 || rep.Invalid != 0 {
		t.Errorf("cache-enabled smoke must be clean: %+v", rep)
	}
	if rep.OK+rep.Partial != 120 {
		t.Errorf("responses do not add up: %+v", rep)
	}
	if rep.CacheHits == 0 {
		t.Errorf("zipf smoke traffic never hit the cache: %+v", rep)
	}
	if cache.Len() == 0 {
		t.Errorf("cache never populated")
	}
}
