package server

import (
	"sync"
	"time"

	"mcost/internal/core"
)

// Admission control denominated in predicted work, not request count.
// The paper's central claim — a query's node reads and distance
// computations are predictable from the distance distribution alone —
// is exactly the signal load shedding needs: a fixed requests-per-
// second limit treats a radius-0.01 point lookup and a radius-0.5
// near-scan as equal, while per-query cost in high dimensions varies by
// orders of magnitude (Pestov, arXiv cs/9904002). The Admitter instead
// keeps a token bucket whose tokens are node reads and distance
// computations per second; each query drains its own L-MCM prediction.

// AdmitConfig sizes the admission bucket.
type AdmitConfig struct {
	// NodeReadsPerSec and DistCalcsPerSec are the sustained capacity in
	// the two cost dimensions. A zero (or negative) rate leaves that
	// dimension unlimited; if both are zero admission is disabled.
	NodeReadsPerSec float64
	DistCalcsPerSec float64
	// BurstSeconds is the bucket depth in seconds of capacity (default
	// 1): the bucket holds at most rate × BurstSeconds tokens, so an
	// idle server can absorb that much work instantaneously.
	BurstSeconds float64
	// MaxQueueDelay bounds borrowing against future capacity (default
	// 100ms): a query that cannot be covered by the current tokens is
	// still admitted — queued behind the deficit — if the bucket will
	// have refilled its cost within this delay; beyond it the query is
	// shed.
	MaxQueueDelay time.Duration
}

func (c AdmitConfig) withDefaults() AdmitConfig {
	if c.BurstSeconds <= 0 {
		c.BurstSeconds = 1
	}
	if c.MaxQueueDelay <= 0 {
		c.MaxQueueDelay = 100 * time.Millisecond
	}
	return c
}

// Enabled reports whether any dimension is rate-limited.
func (c AdmitConfig) Enabled() bool { return c.NodeReadsPerSec > 0 || c.DistCalcsPerSec > 0 }

// Decision is the admission verdict for one priced query.
type Decision struct {
	// Admit reports whether the query may execute.
	Admit bool
	// Wait is the predicted queue delay the query was admitted under
	// (zero when tokens covered it immediately).
	Wait time.Duration
	// RetryAfter, on a shed, tells the client how long to back off
	// before the bucket could cover this query's cost — proportional to
	// the predicted cost, so expensive queries back off longer.
	RetryAfter time.Duration
}

// Admitter is the cost token bucket. It is safe for concurrent use.
type Admitter struct {
	cfg AdmitConfig
	now func() time.Time

	mu    sync.Mutex
	nodes float64 // current tokens; may run negative up to the borrow bound
	dists float64
	last  time.Time
}

// NewAdmitter returns an admitter for the config, or nil when the
// config disables admission (a nil *Admitter admits everything). The
// clock is injectable for deterministic tests; nil uses time.Now.
func NewAdmitter(cfg AdmitConfig, now func() time.Time) *Admitter {
	if !cfg.Enabled() {
		return nil
	}
	cfg = cfg.withDefaults()
	if now == nil {
		now = time.Now
	}
	a := &Admitter{cfg: cfg, now: now}
	a.nodes = cfg.NodeReadsPerSec * cfg.BurstSeconds
	a.dists = cfg.DistCalcsPerSec * cfg.BurstSeconds
	a.last = now()
	return a
}

// refill credits tokens for the time elapsed since the last update,
// capped at the burst depth. Caller holds a.mu.
func (a *Admitter) refill(t time.Time) {
	dt := t.Sub(a.last).Seconds()
	if dt <= 0 {
		return
	}
	a.last = t
	if r := a.cfg.NodeReadsPerSec; r > 0 {
		a.nodes += r * dt
		if cap := r * a.cfg.BurstSeconds; a.nodes > cap {
			a.nodes = cap
		}
	}
	if r := a.cfg.DistCalcsPerSec; r > 0 {
		a.dists += r * dt
		if cap := r * a.cfg.BurstSeconds; a.dists > cap {
			a.dists = cap
		}
	}
}

// maxWait saturates deficit waits that would overflow time.Duration
// (tiny rates against large costs): effectively "never".
const maxWait = 100 * 365 * 24 * time.Hour

// deficitWait returns how long dimension rate takes to refill the
// shortfall between level and cost (zero when covered or unlimited).
func deficitWait(level, cost, rate float64) time.Duration {
	if rate <= 0 || level >= cost {
		return 0
	}
	ns := (cost - level) / rate * float64(time.Second)
	if ns >= float64(maxWait) {
		return maxWait
	}
	return time.Duration(ns)
}

// Admit charges one priced query against the bucket. Admitted queries
// drain their predicted cost (possibly borrowing: the level runs
// negative, delaying later arrivals); shed queries drain nothing. A
// query costing more than the bucket can ever hold is still admitted
// when the bucket is full — otherwise it could never run — and its
// overdraft throttles what follows.
func (a *Admitter) Admit(est core.CostEstimate) Decision {
	if a == nil {
		return Decision{Admit: true}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.refill(a.now())
	wNodes := deficitWait(a.nodes, est.Nodes, a.cfg.NodeReadsPerSec)
	wDists := deficitWait(a.dists, est.Dists, a.cfg.DistCalcsPerSec)
	wait := wNodes
	if wDists > wait {
		wait = wDists
	}
	if wait > a.cfg.MaxQueueDelay && !a.full() {
		retry := wait - a.cfg.MaxQueueDelay
		if retry < time.Millisecond {
			retry = time.Millisecond
		}
		return Decision{RetryAfter: retry}
	}
	if a.cfg.NodeReadsPerSec > 0 {
		a.nodes -= est.Nodes
	}
	if a.cfg.DistCalcsPerSec > 0 {
		a.dists -= est.Dists
	}
	return Decision{Admit: true, Wait: wait}
}

// full reports whether every limited dimension sits at its burst depth
// (an idle bucket). Caller holds a.mu.
func (a *Admitter) full() bool {
	if r := a.cfg.NodeReadsPerSec; r > 0 && a.nodes < r*a.cfg.BurstSeconds {
		return false
	}
	if r := a.cfg.DistCalcsPerSec; r > 0 && a.dists < r*a.cfg.BurstSeconds {
		return false
	}
	return true
}
