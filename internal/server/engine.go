// Package server is the cost-aware HTTP serving layer over a built
// index: an HTTP/JSON API (/v1/range, /v1/nn, /v1/stats, /healthz)
// whose admission control is denominated in the paper's cost units.
// Every incoming query is priced with the level-based cost model
// (L-MCM) before it runs; the predicted node reads and distance
// computations are charged against a token bucket of capacity-per-
// second, a per-request execution budget of prediction × slack is
// attached, and the query is either executed, micro-batched with
// compatible queued queries to amortize node reads, or shed with a
// typed 429 carrying the predicted cost so clients can back off
// proportionally to what they asked for.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"unicode/utf8"

	"mcost/internal/budget"
	"mcost/internal/core"
	"mcost/internal/metric"
	"mcost/internal/mtree"
	"mcost/internal/obs"
	"mcost/internal/recal"
)

// Engine is the query engine behind the server: a built index that can
// price queries before running them and execute compatible batches in
// one shared traversal. *mcost.Index and *mcost.ShardedIndex satisfy it.
type Engine interface {
	// PriceRange / PriceNN return the L-MCM predicted cost of one
	// query — the admission currency.
	PriceRange(radius float64) core.CostEstimate
	PriceNN(k int) core.CostEstimate
	// RangeBatchTraced / NNBatchTraced execute a batch under a context,
	// a batch budget, and an optional trace; partial per-query results
	// accompany a typed budget/context error.
	RangeBatchTraced(ctx context.Context, qs []metric.Object, radius float64, b budget.Budget, tr *obs.Trace) ([][]mtree.Match, error)
	NNBatchTraced(ctx context.Context, qs []metric.Object, k int, b budget.Budget, tr *obs.Trace) ([][]mtree.Match, error)
	// Structural facts for budget floors and /healthz.
	Size() int
	NumNodes() int
	Height() int
	PageSize() int
}

// Mutable is the optional write surface of an Engine. An engine that
// implements it gets /v1/insert and /v1/delete mounted, with the server
// serializing writes against in-flight queries (the trees are not safe
// for mutation concurrent with reads). *mcost.Index and
// *mcost.ShardedIndex satisfy it.
type Mutable interface {
	Insert(obj metric.Object) (uint64, error)
	Delete(obj metric.Object, oid uint64) error
}

// RecalReporter is the optional recalibration surface: an engine with a
// live recalibrator reports its drift state, which /v1/stats exposes as
// gauges.
type RecalReporter interface {
	RecalStats() (recal.Stats, bool)
}

// ModelReporter is the optional model-export surface: an engine that
// can describe its cost model on the wire (a shard node's F̂/L-MCM
// summary) gets GET /v1/model mounted, which the scatter-gather router
// fetches at boot to price, prune, and hedge per shard. *shard.Node
// satisfies it.
type ModelReporter interface {
	ModelSummary() (json.RawMessage, error)
}

// ObjectDecoder decodes the "query" field of a request into a metric
// object, rejecting anything the engine's space cannot compare. A
// decoder must validate strictly: wrong shapes and non-finite values
// are errors, never coerced.
type ObjectDecoder func(raw json.RawMessage) (metric.Object, error)

// VectorDecoder returns a decoder for D-dimensional vector spaces: the
// query must be a JSON array of exactly dim finite numbers.
func VectorDecoder(dim int) ObjectDecoder {
	return func(raw json.RawMessage) (metric.Object, error) {
		var v []float64
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, fmt.Errorf("query must be an array of %d numbers: %v", dim, err)
		}
		if len(v) != dim {
			return nil, fmt.Errorf("query has %d coordinates, index is %d-dimensional", len(v), dim)
		}
		for i, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("query coordinate %d is not finite", i)
			}
		}
		return metric.Vector(v), nil
	}
}

// StringDecoder returns a decoder for string spaces: the query must be
// a valid UTF-8 JSON string of at most maxLen bytes (the space's
// distance bound assumes bounded length).
func StringDecoder(maxLen int) ObjectDecoder {
	return func(raw json.RawMessage) (metric.Object, error) {
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, fmt.Errorf("query must be a string: %v", err)
		}
		if maxLen > 0 && len(s) > maxLen {
			return nil, fmt.Errorf("query is %d bytes, space bounds strings at %d", len(s), maxLen)
		}
		if !utf8.ValidString(s) {
			return nil, fmt.Errorf("query is not valid UTF-8")
		}
		return s, nil
	}
}

// BitStringDecoder returns a decoder for fixed-length string spaces
// (Hamming): the query must be a JSON string of exactly n bytes.
// Hamming distance panics on length mismatch, so anything shorter or
// longer must die here as a typed 4xx, never reach a distance call.
func BitStringDecoder(n int) ObjectDecoder {
	return func(raw json.RawMessage) (metric.Object, error) {
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, fmt.Errorf("query must be a string: %v", err)
		}
		if len(s) != n {
			return nil, fmt.Errorf("query is %d bytes, index holds fixed-length strings of %d", len(s), n)
		}
		if !utf8.ValidString(s) {
			return nil, fmt.Errorf("query is not valid UTF-8")
		}
		return s, nil
	}
}

// DecoderFor infers the right decoder from a sample indexed object.
// Prefer DecoderForSpace, which also distinguishes fixed-length
// (Hamming) from bounded-length (edit) string spaces.
func DecoderFor(sample metric.Object, bound float64) (ObjectDecoder, error) {
	switch o := sample.(type) {
	case metric.Vector:
		return VectorDecoder(len(o)), nil
	case string:
		return StringDecoder(int(bound)), nil
	default:
		return nil, fmt.Errorf("server: no decoder for object type %T", sample)
	}
}

// DecoderForSpace infers the strictest decoder the space admits from a
// sample indexed object. Unlike DecoderFor, a Hamming space gets a
// fixed-length decoder keyed to the sample's length, so a mismatched
// query is a 400 instead of a panic inside the distance function.
func DecoderForSpace(space *metric.Space, sample metric.Object) (ObjectDecoder, error) {
	if space == nil {
		return nil, fmt.Errorf("server: nil space")
	}
	if s, ok := sample.(string); ok && space.Name == "hamming" {
		return BitStringDecoder(len(s)), nil
	}
	return DecoderFor(sample, space.Bound)
}
