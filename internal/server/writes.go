package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"mcost/internal/budget"
	"mcost/internal/core"
	"mcost/internal/metric"
	"mcost/internal/mtree"
	"mcost/internal/obs"
)

// lockedEngine serializes a Mutable engine behind a readers-writer
// lock: pricing, batch dispatch, and structural reads share the read
// side; the write handlers take the write side around Insert/Delete.
// The trees support concurrent read-only queries but not mutation
// concurrent with anything, so this is the minimal guard that keeps the
// read path fully parallel between writes.
type lockedEngine struct {
	eng Engine
	mu  *sync.RWMutex
}

func (l *lockedEngine) PriceRange(radius float64) core.CostEstimate {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.eng.PriceRange(radius)
}

func (l *lockedEngine) PriceNN(k int) core.CostEstimate {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.eng.PriceNN(k)
}

func (l *lockedEngine) RangeBatchTraced(ctx context.Context, qs []metric.Object, radius float64, b budget.Budget, tr *obs.Trace) ([][]mtree.Match, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.eng.RangeBatchTraced(ctx, qs, radius, b, tr)
}

func (l *lockedEngine) NNBatchTraced(ctx context.Context, qs []metric.Object, k int, b budget.Budget, tr *obs.Trace) ([][]mtree.Match, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.eng.NNBatchTraced(ctx, qs, k, b, tr)
}

func (l *lockedEngine) Size() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.eng.Size()
}

func (l *lockedEngine) NumNodes() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.eng.NumNodes()
}

func (l *lockedEngine) Height() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.eng.Height()
}

func (l *lockedEngine) PageSize() int { return l.eng.PageSize() }

// writeTracker remembers when each in-flight write entered the write
// path (before it takes the writer lock), so /healthz can tell a live
// node from one wedged behind a stuck writer: if the oldest tracked
// write is older than the wedge threshold, queries are queueing behind
// the lock and the node should stop advertising itself healthy.
type writeTracker struct {
	mu     sync.Mutex
	next   uint64
	active map[uint64]time.Time
}

// begin records a write entering the write path and returns its token.
func (t *writeTracker) begin(now time.Time) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.active == nil {
		t.active = make(map[uint64]time.Time)
	}
	id := t.next
	t.next++
	t.active[id] = now
	return id
}

// end clears a finished write.
func (t *writeTracker) end(id uint64) {
	t.mu.Lock()
	delete(t.active, id)
	t.mu.Unlock()
}

// oldest returns the age of the longest-running in-flight write (zero
// when none are active).
func (t *writeTracker) oldest(now time.Time) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	var max time.Duration
	for _, start := range t.active {
		if age := now.Sub(start); age > max {
			max = age
		}
	}
	return max
}

// InsertResponse is the 200 body of /v1/insert.
type InsertResponse struct {
	// OID is the server-assigned object identifier; pass it back to
	// /v1/delete. OIDs are never reused.
	OID uint64 `json:"oid"`
	// Size is the indexed object count after the insert.
	Size int `json:"size"`
}

// DeleteResponse is the 200 body of /v1/delete.
type DeleteResponse struct {
	Deleted bool `json:"deleted"`
	// Size is the indexed object count after the delete.
	Size int `json:"size"`
}

// writeRequest is the decoded, validated body of a write endpoint.
type writeRequest struct {
	obj metric.Object
	oid uint64
}

// rawWriteRequest is the wire shape before validation.
type rawWriteRequest struct {
	Object json.RawMessage `json:"object"`
	OID    *uint64         `json:"oid"`
}

// decodeWrite parses and strictly validates a write body, mirroring
// decodeQuery's discipline: typed 4xx errors, nothing coerced.
func (s *Server) decodeWrite(r io.Reader, insert bool) (writeRequest, *apiError) {
	var out writeRequest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var raw rawWriteRequest
	if err := dec.Decode(&raw); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return out, &apiError{status: http.StatusRequestEntityTooLarge, code: "body_too_large",
				msg: fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit)}
		}
		return out, badRequest("bad_json", "invalid request body: %v", err)
	}
	if dec.More() {
		return out, badRequest("bad_json", "trailing data after request body")
	}
	if len(raw.Object) == 0 {
		return out, badRequest("missing_object", "request has no \"object\" field")
	}
	obj, err := s.dec(raw.Object)
	if err != nil {
		return out, badRequest("bad_object", "%v", err)
	}
	out.obj = obj
	if insert {
		if raw.OID != nil {
			return out, badRequest("bad_oid", "\"oid\" is not an insert parameter; the server assigns OIDs")
		}
		return out, nil
	}
	if raw.OID == nil {
		return out, badRequest("missing_oid", "delete request has no \"oid\" field")
	}
	out.oid = *raw.OID
	return out, nil
}

// handleWrite mutates the index under the write lock. The result-cache
// epoch is bumped inside the critical section, so no query can probe a
// pre-write entry after the write is visible — the invalidation the
// cache's exactness contract requires.
func (s *Server) handleWrite(insert bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.cRequests.Inc()
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			s.reject(w, &apiError{status: http.StatusMethodNotAllowed, code: "method_not_allowed",
				msg: "write endpoints accept POST only"})
			return
		}
		if s.mut == nil {
			s.reject(w, &apiError{status: http.StatusNotImplemented, code: "read_only",
				msg: "this engine does not support writes"})
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		req, aerr := s.decodeWrite(r.Body, insert)
		if aerr != nil {
			s.reject(w, aerr)
			return
		}
		if insert {
			wid := s.writes.begin(s.clock())
			s.wmu.Lock()
			oid, err := s.mut.Insert(req.obj)
			if err == nil && s.cache != nil {
				s.cache.BumpEpoch()
			}
			s.wmu.Unlock()
			s.writes.end(wid)
			if err != nil {
				s.cErrors.Inc()
				s.writeJSON(w, http.StatusInternalServerError, ErrorResponse{Code: "internal", Error: err.Error()})
				return
			}
			s.cInserts.Inc()
			s.writeJSON(w, http.StatusOK, InsertResponse{OID: oid, Size: s.eng.Size()})
			return
		}
		wid := s.writes.begin(s.clock())
		s.wmu.Lock()
		err := s.mut.Delete(req.obj, req.oid)
		if err == nil && s.cache != nil {
			s.cache.BumpEpoch()
		}
		s.wmu.Unlock()
		s.writes.end(wid)
		if err != nil {
			if errors.Is(err, mtree.ErrNotFound) {
				s.reject(w, &apiError{status: http.StatusNotFound, code: "not_found", msg: err.Error()})
				return
			}
			s.cErrors.Inc()
			s.writeJSON(w, http.StatusInternalServerError, ErrorResponse{Code: "internal", Error: err.Error()})
			return
		}
		s.cDeletes.Inc()
		s.writeJSON(w, http.StatusOK, DeleteResponse{Deleted: true, Size: s.eng.Size()})
	}
}

// refreshRecalGauges copies the engine's current drift state into the
// registry so /v1/stats snapshots carry it. Gauges are levels: each
// refresh overwrites the last.
func (s *Server) refreshRecalGauges() {
	rr, ok := s.base.(RecalReporter)
	if !ok {
		return
	}
	st, ok := rr.RecalStats()
	if !ok {
		return
	}
	s.reg.Gauge("recal.window_error").Set(st.WindowError)
	s.reg.Gauge("recal.drift_alarms").Set(float64(st.DriftAlarms))
	s.reg.Gauge("recal.band").Set(st.Band)
	inBand := 0.0
	if st.InBand {
		inBand = 1
	}
	s.reg.Gauge("recal.in_band").Set(inBand)
	for i, b := range st.BiasNodesPerLevel {
		s.reg.Gauge(fmt.Sprintf("recal.bias_nodes.l%d", i)).Set(b)
	}
	for i, b := range st.BiasDistsPerLevel {
		s.reg.Gauge(fmt.Sprintf("recal.bias_dists.l%d", i)).Set(b)
	}
}
