package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mcost"
	"mcost/internal/dataset"
	"mcost/internal/obs"
	"mcost/internal/recal"
	"mcost/internal/rescache"
	"mcost/internal/workload"
)

// writableIndex builds a private mutable index per test — the shared
// read-only testIndex must never see writes.
func writableIndex(t testing.TB, seed int64) *mcost.Index {
	t.Helper()
	d := dataset.Uniform(400, 4, seed)
	ix, err := mcost.Build(d.Space, d.Objects, mcost.Options{Seed: seed, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func newWritableServer(t testing.TB, cfg Config) (*Server, *mcost.Index) {
	t.Helper()
	ix := writableIndex(t, 21)
	cfg.Engine = ix
	if cfg.Decode == nil {
		cfg.Decode = VectorDecoder(4)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, ix
}

// TestWriteEndpointsRoundTrip drives the full write lifecycle over
// HTTP: insert an object, find it with a range query at distance zero,
// delete it by the returned OID, verify it is gone, and verify a
// second delete of the same OID is a typed 404.
func TestWriteEndpointsRoundTrip(t *testing.T) {
	s, ix := newWritableServer(t, Config{})
	h := s.Handler()
	size0 := ix.Size()

	rec := post(t, h, "/v1/insert", `{"object":[0.41,0.43,0.47,0.49]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("insert: status %d: %s", rec.Code, rec.Body.String())
	}
	ins := decodeResp[InsertResponse](t, rec)
	if ins.Size != size0+1 {
		t.Fatalf("insert reported size %d, want %d", ins.Size, size0+1)
	}

	// The inserted object is immediately visible to queries, under its
	// reported OID.
	rec = post(t, h, "/v1/range", `{"query":[0.41,0.43,0.47,0.49],"radius":0.0001}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-insert query: status %d: %s", rec.Code, rec.Body.String())
	}
	qr := decodeResp[QueryResponse](t, rec)
	found := false
	for _, m := range qr.Matches {
		if m.OID == ins.OID {
			if m.Distance != 0 {
				t.Fatalf("inserted object at distance %v from itself", m.Distance)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("inserted OID %d not visible to queries: %s", ins.OID, rec.Body.String())
	}

	raw, _ := json.Marshal(map[string]interface{}{
		"object": []float64{0.41, 0.43, 0.47, 0.49}, "oid": ins.OID,
	})
	rec = post(t, h, "/v1/delete", string(raw))
	if rec.Code != http.StatusOK {
		t.Fatalf("delete: status %d: %s", rec.Code, rec.Body.String())
	}
	del := decodeResp[DeleteResponse](t, rec)
	if !del.Deleted || del.Size != size0 {
		t.Fatalf("delete response %+v, want deleted with size %d", del, size0)
	}

	rec = post(t, h, "/v1/range", `{"query":[0.41,0.43,0.47,0.49],"radius":0.0001}`)
	qr = decodeResp[QueryResponse](t, rec)
	for _, m := range qr.Matches {
		if m.OID == ins.OID {
			t.Fatalf("deleted OID %d still answers queries", ins.OID)
		}
	}

	// Deleting a dead OID is a typed 404, not corruption or a 500.
	rec = post(t, h, "/v1/delete", string(raw))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("re-delete: status %d, want 404: %s", rec.Code, rec.Body.String())
	}
	if er := decodeResp[ErrorResponse](t, rec); er.Code != "not_found" {
		t.Fatalf("re-delete code %q, want not_found", er.Code)
	}

	snap := s.Registry().Snapshot()
	if snap.Counters["server.inserts"] != 1 || snap.Counters["server.deletes"] != 1 {
		t.Errorf("write counters wrong: %v", snap.Counters)
	}
}

// TestWriteTypedRejections pins the write decoders' 4xx contract,
// mirroring the query-side rejection table.
func TestWriteTypedRejections(t *testing.T) {
	s, _ := newWritableServer(t, Config{})
	h := s.Handler()
	cases := []struct {
		name, path, body string
		status           int
		code             string
	}{
		{"bad json", "/v1/insert", `{"object":`, http.StatusBadRequest, "bad_json"},
		{"unknown field", "/v1/insert", `{"object":[0,0,0,0],"bogus":1}`, http.StatusBadRequest, "bad_json"},
		{"missing object", "/v1/insert", `{}`, http.StatusBadRequest, "missing_object"},
		{"wrong dim", "/v1/insert", `{"object":[0,0]}`, http.StatusBadRequest, "bad_object"},
		{"oid on insert", "/v1/insert", `{"object":[0,0,0,0],"oid":3}`, http.StatusBadRequest, "bad_oid"},
		{"missing oid", "/v1/delete", `{"object":[0,0,0,0]}`, http.StatusBadRequest, "missing_oid"},
		{"delete bad object", "/v1/delete", `{"object":"hi","oid":1}`, http.StatusBadRequest, "bad_object"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(t, h, tc.path, tc.body)
			if rec.Code != tc.status {
				t.Fatalf("status %d, want %d (%s)", rec.Code, tc.status, rec.Body.String())
			}
			if er := decodeResp[ErrorResponse](t, rec); er.Code != tc.code {
				t.Errorf("code %q, want %q", er.Code, tc.code)
			}
		})
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/insert", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/insert: status %d, want 405", rec.Code)
	}
}

// readOnlyEngine hides the facade's write methods: it satisfies Engine
// through embedding but not Mutable.
type readOnlyEngine struct {
	Engine
}

// TestWritesOnReadOnlyEngineAre501: an engine without Insert/Delete
// serves queries normally and rejects writes with a typed 501.
func TestWritesOnReadOnlyEngineAre501(t *testing.T) {
	s, err := New(Config{Engine: readOnlyEngine{testIndex(t)}, Decode: VectorDecoder(4)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()
	for _, path := range []string{"/v1/insert", "/v1/delete"} {
		rec := post(t, h, path, `{"object":[0,0,0,0],"oid":1}`)
		if rec.Code != http.StatusNotImplemented {
			t.Fatalf("%s on read-only engine: status %d, want 501", path, rec.Code)
		}
		if er := decodeResp[ErrorResponse](t, rec); er.Code != "read_only" {
			t.Errorf("%s code %q, want read_only", path, er.Code)
		}
	}
	rec := post(t, h, "/v1/range", `{"query":[0.5,0.5,0.5,0.5],"radius":0.2}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("read-only engine must still serve queries: status %d", rec.Code)
	}
}

// TestE2EDeleteInvalidatesCachedResults is the end-to-end regression
// for the stale-delete bug: a cached range result whose ball contains
// an object must stop serving the moment that object is deleted over
// HTTP. Before write-epoch invalidation the second probe below was a
// cache hit that resurrected the deleted OID.
func TestE2EDeleteInvalidatesCachedResults(t *testing.T) {
	ix := writableIndex(t, 23)
	cache, err := rescache.New(rescache.Config{Entries: 16, Dist: ix.Space().Distance})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Engine: ix, Decode: VectorDecoder(4), Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()

	q := mcost.Vector{0.5, 0.5, 0.5, 0.5}
	const radius = 0.35
	direct, err := ix.Range(q, radius)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) == 0 {
		t.Fatal("test query must have matches")
	}
	victim := direct[0]

	body, _ := json.Marshal(map[string]interface{}{"query": q, "radius": radius})
	rec := post(t, h, "/v1/range", string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("populate query: status %d: %s", rec.Code, rec.Body.String())
	}
	// Prove the entry is resident: an immediate repeat is a hit.
	rec = post(t, h, "/v1/range", string(body))
	if qr := decodeResp[QueryResponse](t, rec); !qr.Cached {
		t.Fatalf("repeat before the write must be a cache hit: %s", rec.Body.String())
	}

	delBody, _ := json.Marshal(map[string]interface{}{"object": victim.Object, "oid": victim.OID})
	rec = post(t, h, "/v1/delete", string(delBody))
	if rec.Code != http.StatusOK {
		t.Fatalf("delete: status %d: %s", rec.Code, rec.Body.String())
	}

	// Repeats after the delete must re-execute (the cached ball is
	// stale) and must never surface the deleted OID again.
	for i := 0; i < 2; i++ {
		rec = post(t, h, "/v1/range", string(body))
		if rec.Code != http.StatusOK {
			t.Fatalf("post-delete query %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		qr := decodeResp[QueryResponse](t, rec)
		if i == 0 && qr.Cached {
			t.Fatalf("query after a delete served from the pre-delete cache: %s", rec.Body.String())
		}
		for _, m := range qr.Matches {
			if m.OID == victim.OID {
				t.Fatalf("deleted OID %d resurrected by the result cache", victim.OID)
			}
		}
		if len(qr.Matches) != len(direct)-1 {
			t.Fatalf("post-delete query %d returned %d matches, want %d", i, len(qr.Matches), len(direct)-1)
		}
	}
}

// TestStatsReportRecalGauges: once recalibration is enabled on the
// engine, /v1/stats snapshots carry the drift gauges.
func TestStatsReportRecalGauges(t *testing.T) {
	ix := writableIndex(t, 29)
	if err := ix.EnableRecalibration(recal.Config{Band: 0.25}, nil); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Engine: ix, Decode: VectorDecoder(4)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()

	// A few writes and a query give the gauges real state to report.
	for _, body := range []string{
		`{"object":[0.11,0.12,0.13,0.14]}`,
		`{"object":[0.21,0.22,0.23,0.24]}`,
	} {
		if rec := post(t, h, "/v1/insert", body); rec.Code != http.StatusOK {
			t.Fatalf("insert: status %d: %s", rec.Code, rec.Body.String())
		}
	}
	if rec := post(t, h, "/v1/range", `{"query":[0.5,0.5,0.5,0.5],"radius":0.2}`); rec.Code != http.StatusOK {
		t.Fatalf("query: status %d", rec.Code)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: status %d", rec.Code)
	}
	var env obs.Envelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	for _, g := range []string{"recal.window_error", "recal.band", "recal.in_band", "recal.drift_alarms"} {
		if _, ok := env.Metrics.Gauges[g]; !ok {
			t.Errorf("stats missing gauge %q: %v", g, env.Metrics.Gauges)
		}
	}
	if got := env.Metrics.Gauges["recal.band"]; got != 0.25 {
		t.Errorf("recal.band gauge %v, want the configured 0.25", got)
	}
}

// TestServerSmokeChurn is the CI churn leg under -race: the closed-loop
// generator mixes live inserts and deletes into Zipf query traffic
// against the full stack — write lock, cache epochs, micro-batcher,
// recalibration — and everything must stay clean and add up.
func TestServerSmokeChurn(t *testing.T) {
	ix := writableIndex(t, 31)
	if err := ix.EnableRecalibration(recal.Config{}, nil); err != nil {
		t.Fatal(err)
	}
	cache, err := rescache.New(rescache.Config{Entries: 128, Dist: ix.Space().Distance})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Engine:    ix,
		Decode:    VectorDecoder(4),
		Admission: AdmitConfig{NodeReadsPerSec: 1e7, DistCalcsPerSec: 1e9},
		Batch:     BatchConfig{Window: 2 * time.Millisecond, MaxBatch: 8},
		Cache:     cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	size0 := ix.Size()
	rep, err := workload.RunHTTP(ts.URL, smokeWorkload(), testQueryPool(), workload.HTTPOptions{
		Requests: 150, Workers: 6, Seed: 13, ZipfS: 1.3, Client: ts.Client(),
		InsertFrac: 0.2, DeleteFrac: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("churn smoke: %+v", rep)
	if rep.Errors != 0 || rep.Invalid != 0 || rep.Shed != 0 {
		t.Fatalf("churn smoke must be clean: %+v", rep)
	}
	if rep.Inserts == 0 || rep.Deletes == 0 {
		t.Fatalf("churn smoke must exercise both write paths: %+v", rep)
	}
	if rep.OK+rep.Partial+rep.Inserts+rep.Deletes != rep.Requests {
		t.Fatalf("responses do not add up: %+v", rep)
	}
	if got, want := ix.Size(), size0+rep.Inserts-rep.Deletes; got != want {
		t.Fatalf("engine size %d after churn, want %d (start %d, +%d -%d)",
			got, want, size0, rep.Inserts, rep.Deletes)
	}
	snap := s.Registry().Snapshot()
	if snap.Counters["server.inserts"] != int64(rep.Inserts) ||
		snap.Counters["server.deletes"] != int64(rep.Deletes) {
		t.Fatalf("server write counters disagree with the client: %v vs %+v", snap.Counters, rep)
	}
}
