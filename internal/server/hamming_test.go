package server

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"mcost"
	"mcost/internal/metric"
)

// The PR 9 boundary-validation regression: metric.Hamming panics on
// length-mismatched strings, and the generic StringDecoder only caps
// length — so before DecoderForSpace a short query on a Hamming index
// turned into a 500 via panic. These tests pin the fixed behavior: a
// wrong-length query is a typed 400 before any distance call.

func buildHammingServer(t *testing.T, dim int) *Server {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	objs := make([]mcost.Object, 200)
	for i := range objs {
		b := make([]byte, dim)
		for j := range b {
			b[j] = byte('0' + rng.Intn(2))
		}
		objs[i] = string(b)
	}
	space := metric.HammingSpace(dim)
	ix, err := mcost.Build(space, objs, mcost.Options{Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecoderForSpace(space, objs[0])
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Engine: ix, Decode: dec})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestHammingServerRejectsWrongLength(t *testing.T) {
	const dim = 16
	s := buildHammingServer(t, dim)

	ok := strings.Repeat("01", dim/2)
	body, _ := json.Marshal(map[string]interface{}{"query": ok, "radius": 4.0})
	rec := post(t, s.Handler(), "/v1/range", string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("valid bit-string query: status %d: %s", rec.Code, rec.Body.String())
	}

	for name, q := range map[string]string{
		"short": strings.Repeat("0", dim-1),
		"long":  strings.Repeat("0", dim+1),
		"empty": "",
	} {
		body, _ := json.Marshal(map[string]interface{}{"query": q, "radius": 4.0})
		rec := post(t, s.Handler(), "/v1/range", string(body))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s query: status %d, want 400 (body %s)", name, rec.Code, rec.Body.String())
		}
		var resp ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("%s query: error body is not JSON: %v", name, err)
		}
		if resp.Code != "bad_query" {
			t.Errorf("%s query: error code %q, want bad_query", name, resp.Code)
		}
		body, _ = json.Marshal(map[string]interface{}{"query": q, "k": 3})
		rec = post(t, s.Handler(), "/v1/nn", string(body))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s NN query: status %d, want 400", name, rec.Code)
		}
	}
}

func TestDecoderForSpaceSelection(t *testing.T) {
	ham, err := DecoderForSpace(metric.HammingSpace(8), strings.Repeat("0", 8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ham(json.RawMessage(`"0101"`)); err == nil {
		t.Error("hamming decoder accepted a short string")
	}
	if _, err := ham(json.RawMessage(`"01010101"`)); err != nil {
		t.Errorf("hamming decoder rejected an exact-length string: %v", err)
	}
	// Edit spaces keep the bounded-length decoder: shorter is fine.
	ed, err := DecoderForSpace(metric.EditSpace(10), "hello")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ed(json.RawMessage(`"hi"`)); err != nil {
		t.Errorf("edit decoder rejected a short string: %v", err)
	}
	if _, err := ed(json.RawMessage(`"` + strings.Repeat("x", 11) + `"`)); err == nil {
		t.Error("edit decoder accepted an over-bound string")
	}
}
