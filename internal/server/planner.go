package server

import (
	"net/http"

	"mcost/internal/advisor"
)

// Planner is the optional breakdown-aware planning surface of an
// Engine: one that can price a query on both the metric index and the
// linear scan, pick the cheaper, and describe how close its dataset
// sits to the metric-indexing breakdown point. *mcost.Index and
// *mcost.ShardedIndex satisfy it. A planning engine gets:
//
//   - a plan attached to every query response (chosen engine, both
//     prices, the reason);
//   - plan_tree / plan_scan decision counters and advisor.* hardness
//     gauges on /v1/stats;
//   - the plan ceiling: when Config.PlanCeiling > 0 and even the
//     cheapest plan prices above it, the query is rejected up front
//     with a typed 422 plan_rejected instead of burning its whole
//     budget and returning a partial.
type Planner interface {
	PlanRange(radius float64) (advisor.Decision, error)
	PlanNN(k int) (advisor.Decision, error)
	Hardness() advisor.Profile
}

// PlanJSON is a query plan on the wire.
type PlanJSON struct {
	// Engine is the advisor's choice: "tree", "scan", or
	// "sharded-fanout".
	Engine string `json:"engine"`
	// PredictedTree and PredictedScan are both priced alternatives.
	PredictedTree CostJSON `json:"predicted_tree"`
	PredictedScan CostJSON `json:"predicted_scan"`
	Reason        string   `json:"reason"`
}

func planJSON(d advisor.Decision) *PlanJSON {
	return &PlanJSON{
		Engine:        string(d.Engine),
		PredictedTree: costJSON(d.PredictedTree),
		PredictedScan: costJSON(d.PredictedScan),
		Reason:        d.Reason,
	}
}

// planQuery asks the engine's advisor for the query's plan, under the
// read lock when the engine is mutable (planning reads the live model).
// The ceiling check runs here: a cheapest plan pricing above
// PlanCeiling (node reads + distance computations) is a typed 422 —
// the server will not start a query whose best case already exceeds
// what the operator allows.
func (s *Server) planQuery(nn bool, req queryRequest) (advisor.Decision, *apiError) {
	if s.mut != nil {
		s.wmu.RLock()
		defer s.wmu.RUnlock()
	}
	var (
		d   advisor.Decision
		err error
	)
	if nn {
		d, err = s.planner.PlanNN(req.k)
	} else {
		d, err = s.planner.PlanRange(req.radius)
	}
	if err != nil {
		// decodeQuery already rejected malformed radii/k, so a planning
		// error here is unexpected input the decoder missed — still a
		// client error, typed as such.
		return d, badRequest("bad_query", "planning failed: %v", err)
	}
	if s.ceiling > 0 {
		if best := d.Predicted(); best.Nodes+best.Dists > s.ceiling {
			return d, &apiError{
				status: http.StatusUnprocessableEntity,
				code:   "plan_rejected",
				msg:    planRejectedMsg(d, s.ceiling),
			}
		}
	}
	switch d.Engine {
	case advisor.EngineScan:
		s.cPlanScan.Inc()
	default:
		s.cPlanTree.Inc()
	}
	return d, nil
}

func planRejectedMsg(d advisor.Decision, ceiling float64) string {
	best := d.Predicted()
	return "cheapest plan (" + string(d.Engine) + ") prices at " +
		ftoa(best.Nodes+best.Dists) + " node reads + distance computations, above the ceiling " +
		ftoa(ceiling)
}

// ftoa renders a cost without pulling in strconv formatting decisions
// at every call site.
func ftoa(v float64) string {
	const digits = "0123456789"
	if v < 0 {
		return "-" + ftoa(-v)
	}
	n := int64(v)
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = digits[n%10]
		n /= 10
	}
	return string(buf[i:])
}

// refreshAdvisorGauges copies the engine's hardness profile into the
// registry so /v1/stats snapshots carry it (mirrors
// refreshRecalGauges).
func (s *Server) refreshAdvisorGauges() {
	if s.planner == nil {
		return
	}
	var prof advisor.Profile
	if s.mut != nil {
		s.wmu.RLock()
		prof = s.planner.Hardness()
		s.wmu.RUnlock()
	} else {
		prof = s.planner.Hardness()
	}
	s.reg.Gauge("advisor.d2").Set(prof.D2)
	d2v := 0.0
	if prof.D2Valid {
		d2v = 1
	}
	s.reg.Gauge("advisor.d2_valid").Set(d2v)
	s.reg.Gauge("advisor.concentration").Set(prof.Concentration)
	s.reg.Gauge("advisor.intrinsic_dim").Set(prof.IntrinsicDim)
	s.reg.Gauge("advisor.scan_nodes").Set(prof.ScanNodes)
	s.reg.Gauge("advisor.scan_dists").Set(prof.ScanDists)
	s.reg.Gauge("advisor.crossover_radius").Set(prof.CrossoverRadius)
	s.reg.Gauge("advisor.crossover_k").Set(float64(prof.CrossoverK))
}
