package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mcost"
	"mcost/internal/obs"
)

// The facade engines are planning engines.
var (
	_ Planner = (*mcost.Index)(nil)
	_ Planner = (*mcost.ShardedIndex)(nil)
)

func TestPlanAttachedToResponses(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	rec := post(t, h, "/v1/range", `{"query":[0.5,0.5,0.5,0.5],"radius":0.05}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeResp[QueryResponse](t, rec)
	if resp.Plan == nil {
		t.Fatal("planning engine returned no plan")
	}
	if resp.Plan.Engine != "tree" && resp.Plan.Engine != "scan" {
		t.Fatalf("plan engine %q", resp.Plan.Engine)
	}
	if resp.Plan.PredictedScan.DistCalcs != float64(testIndex(t).Size()) {
		t.Fatalf("plan scan dists %g, index size %d", resp.Plan.PredictedScan.DistCalcs, testIndex(t).Size())
	}
	if resp.Plan.Reason == "" {
		t.Fatal("empty plan reason")
	}

	rec = post(t, h, "/v1/nn", `{"query":[0.5,0.5,0.5,0.5],"k":3}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("nn status %d: %s", rec.Code, rec.Body.String())
	}
	if nn := decodeResp[QueryResponse](t, rec); nn.Plan == nil {
		t.Fatal("nn response has no plan")
	}
}

func TestPlanCeilingRejects(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{PlanCeiling: 0.5, Registry: reg})
	h := s.Handler()

	rec := post(t, h, "/v1/range", `{"query":[0.5,0.5,0.5,0.5],"radius":0.4}`)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", rec.Code, rec.Body.String())
	}
	er := decodeResp[ErrorResponse](t, rec)
	if er.Code != "plan_rejected" {
		t.Fatalf("code %q", er.Code)
	}
	if er.PredictedCost == nil || er.PredictedCost.NodeReads+er.PredictedCost.DistCalcs <= 0.5 {
		t.Fatalf("rejection carries no cost above the ceiling: %+v", er.PredictedCost)
	}
	if got := reg.Counter("server.plan_rejected").Value(); got != 1 {
		t.Fatalf("plan_rejected counter = %d", got)
	}
	// The rejected query never reached admission or the batcher.
	if got := reg.Counter("server.admitted").Value(); got != 0 {
		t.Fatalf("admitted counter = %d after a plan rejection", got)
	}
}

func TestPlanCountersAndGauges(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{Registry: reg})
	h := s.Handler()

	// A tiny radius is a clear tree win on a 600-object uniform dataset.
	rec := post(t, h, "/v1/range", `{"query":[0.5,0.5,0.5,0.5],"radius":0.01}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := reg.Counter("server.plan_tree").Value(); got != 1 {
		t.Fatalf("plan_tree counter = %d", got)
	}

	srec := httptest.NewRecorder()
	h.ServeHTTP(srec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if srec.Code != http.StatusOK {
		t.Fatalf("stats status %d", srec.Code)
	}
	body := srec.Body.String()
	for _, g := range []string{
		"advisor.d2", "advisor.concentration", "advisor.intrinsic_dim",
		"advisor.scan_nodes", "advisor.scan_dists",
		"advisor.crossover_radius", "advisor.crossover_k",
	} {
		if !strings.Contains(body, g) {
			t.Fatalf("stats envelope missing gauge %q:\n%s", g, body)
		}
	}
	prof := testIndex(t).Hardness()
	if g := reg.Gauge("advisor.intrinsic_dim").Value(); g != prof.IntrinsicDim {
		t.Fatalf("gauge intrinsic_dim %g, profile %g", g, prof.IntrinsicDim)
	}
}

// TestServerScanModeBitIdentical serves an index forced into scan mode
// and checks the HTTP results equal direct scan execution.
func TestServerScanModeBitIdentical(t *testing.T) {
	ix := testIndex(t)
	if err := ix.SetEngineMode(mcost.EngineScan); err != nil {
		t.Fatal(err)
	}
	defer ix.SetEngineMode(mcost.EngineTree)
	s := newTestServer(t, Config{})
	h := s.Handler()

	rec := post(t, h, "/v1/range", `{"query":[0.5,0.5,0.5,0.5],"radius":0.3}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeResp[QueryResponse](t, rec)
	// Predicted is the scan's fixed price: every object compared.
	if resp.Predicted.DistCalcs != float64(ix.Size()) {
		t.Fatalf("scan-mode predicted dists %g, size %d", resp.Predicted.DistCalcs, ix.Size())
	}
	q := mcost.Vector{0.5, 0.5, 0.5, 0.5}
	direct, err := ix.RangeBatchTraced(t.Context(), []mcost.Object{q}, 0.3, mcost.QueryBudget{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) != len(direct[0]) {
		t.Fatalf("%d matches over HTTP, %d direct", len(resp.Matches), len(direct[0]))
	}
	for i, m := range resp.Matches {
		if m.OID != direct[0][i].OID || m.Distance != direct[0][i].Distance {
			t.Fatalf("match %d: (%d,%v) over HTTP, (%d,%v) direct",
				i, m.OID, m.Distance, direct[0][i].OID, direct[0][i].Distance)
		}
	}
}
