package server

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzDecodeQuery drives arbitrary bodies through both query endpoints
// and checks the decoder contract: every input maps to a typed 4xx or a
// valid 200 — never a panic, never a 5xx, and never a silently clamped
// parameter (a 200 implies the request was well-formed as sent).
func FuzzDecodeQuery(f *testing.F) {
	seeds := []string{
		``,
		`{`,
		`null`,
		`42`,
		`"just a string"`,
		`{"query":[0.5,0.5,0.5,0.5],"radius":0.3}`,
		`{"query":[0.5,0.5,0.5,0.5],"k":3}`,
		`{"query":[0.5,0.5,0.5,0.5],"radius":-1}`,
		`{"query":[0.5,0.5,0.5,0.5],"radius":1e999}`,
		`{"query":[0.5,0.5,0.5,0.5],"radius":null}`,
		`{"query":[0.5,0.5],"radius":0.3}`,
		`{"query":[0.5,"x",0.5,0.5],"radius":0.3}`,
		`{"query":"not a vector","radius":0.3}`,
		`{"query":[0.5,0.5,0.5,0.5],"k":-7}`,
		`{"query":[0.5,0.5,0.5,0.5],"k":0}`,
		`{"query":[0.5,0.5,0.5,0.5],"k":999999999}`,
		`{"query":[0.5,0.5,0.5,0.5],"k":2.5}`,
		`{"query":[0.5,0.5,0.5,0.5],"radius":0.1,"k":3}`,
		`{"query":[0.5,0.5,0.5,0.5],"radius":0.1,"extra":true}`,
		`{"radius":0.1}`,
		`{"query":[0.5,0.5,0.5,0.5],"radius":0.1}{"again":1}`,
		`{"query":[` + strings.Repeat("0.1,", 300) + `0.1],"radius":0.1}`,
		strings.Repeat("[", 5000),
		"{\"query\":[0.5,0.5,0.5,0.5],\"radius\":0.1}\x00",
	}
	for _, s := range seeds {
		f.Add([]byte(s), true)
		f.Add([]byte(s), false)
	}

	s, err := New(Config{
		Engine:       testIndex(f),
		Decode:       VectorDecoder(4),
		MaxBodyBytes: 4096,
		MaxK:         50,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(s.Close)
	h := s.Handler()

	f.Fuzz(func(t *testing.T, body []byte, nn bool) {
		path := "/v1/range"
		if nn {
			path = "/v1/nn"
		}
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(string(body)))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // must not panic
		if rec.Code >= 500 {
			t.Fatalf("input %q produced %d: %s", body, rec.Code, rec.Body.String())
		}
		if rec.Code == http.StatusOK {
			// A 200 means the input was a fully valid request: re-decode
			// it and check the parameters were honored as sent, not
			// clamped into validity.
			var raw struct {
				Query  []float64 `json:"query"`
				Radius *float64  `json:"radius"`
				K      *int      `json:"k"`
			}
			if err := json.Unmarshal(body, &raw); err != nil {
				t.Fatalf("200 for a body that does not re-decode: %q", body)
			}
			if len(raw.Query) != 4 {
				t.Fatalf("200 for a query of dim %d: %q", len(raw.Query), body)
			}
			for _, x := range raw.Query {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					t.Fatalf("200 for a non-finite coordinate: %q", body)
				}
			}
			if nn {
				if raw.K == nil || *raw.K <= 0 || *raw.K > 50 || raw.Radius != nil {
					t.Fatalf("200 for an invalid k-NN request: %q", body)
				}
			} else {
				if raw.Radius == nil || *raw.Radius < 0 || raw.K != nil {
					t.Fatalf("200 for an invalid range request: %q", body)
				}
			}
			var resp QueryResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("200 body not a QueryResponse: %v", err)
			}
			return
		}
		// Every failure is a typed error envelope.
		var resp ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("status %d body not an ErrorResponse: %q", rec.Code, rec.Body.String())
		}
		if resp.Code == "" {
			t.Fatalf("status %d with an untyped error: %q", rec.Code, rec.Body.String())
		}
	})
}
