package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mcost"
	"mcost/internal/obs"
)

func postJSON(t testing.TB, client *http.Client, url string, body interface{}) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestE2EOverloadShedsWithPredictedCost drives offered load past the
// node-read admission budget over real HTTP: admitted queries return
// results bit-identical to direct in-process execution, the rest shed
// with a typed 429 carrying the predicted cost.
func TestE2EOverloadShedsWithPredictedCost(t *testing.T) {
	ix := testIndex(t)
	// Refill is effectively zero: the burst covers the first query, and
	// everything after it sheds.
	s, err := New(Config{
		Engine:    ix,
		Decode:    VectorDecoder(4),
		Admission: AdmitConfig{NodeReadsPerSec: 1e-9, BurstSeconds: 1, MaxQueueDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	q := mcost.Vector{0.3, 0.6, 0.2, 0.9}
	const radius = 0.35
	want, err := ix.Range(q, radius)
	if err != nil {
		t.Fatal(err)
	}

	var ok, shed int
	for i := 0; i < 6; i++ {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/range",
			map[string]interface{}{"query": q, "radius": radius})
		switch resp.StatusCode {
		case http.StatusOK:
			ok++
			var qr QueryResponse
			if err := json.Unmarshal(body, &qr); err != nil {
				t.Fatal(err)
			}
			if qr.Partial {
				t.Fatalf("admitted query degraded unexpectedly: %s", body)
			}
			if len(qr.Matches) != len(want) {
				t.Fatalf("HTTP %d matches, direct %d", len(qr.Matches), len(want))
			}
			for j := range want {
				if qr.Matches[j].OID != want[j].OID ||
					math.Float64bits(qr.Matches[j].Distance) != math.Float64bits(want[j].Distance) {
					t.Fatalf("match %d not bit-identical to direct execution: HTTP (%d, %x) direct (%d, %x)",
						j, qr.Matches[j].OID, math.Float64bits(qr.Matches[j].Distance),
						want[j].OID, math.Float64bits(want[j].Distance))
				}
			}
		case http.StatusTooManyRequests:
			shed++
			var er ErrorResponse
			if err := json.Unmarshal(body, &er); err != nil {
				t.Fatal(err)
			}
			if er.Code != "overloaded" {
				t.Fatalf("429 code %q", er.Code)
			}
			if er.PredictedCost == nil || er.PredictedCost.NodeReads <= 0 {
				t.Fatalf("429 without predicted cost: %s", body)
			}
			if er.RetryAfterMS <= 0 || resp.Header.Get("Retry-After") == "" {
				t.Fatalf("429 without retry-after: %s", body)
			}
		default:
			t.Fatalf("unexpected status %d: %s", resp.StatusCode, body)
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("overload must split into admitted and shed: ok=%d shed=%d", ok, shed)
	}
	snap := s.Registry().Snapshot()
	if snap.Counters["server.shed"] != int64(shed) || snap.Counters["server.admitted"] != int64(ok) {
		t.Fatalf("registry disagrees with observed admissions: %v", snap.Counters)
	}
}

// runBatchProbe fires 32 concurrent same-radius range queries at a
// server built with cfg and returns the amortized node-read counter and
// the per-query responses.
func runBatchProbe(t *testing.T, ix *mcost.Index, cfg Config) (nodeReads int64, resps []QueryResponse) {
	t.Helper()
	cfg.Engine = ix
	cfg.Decode = VectorDecoder(4)
	cfg.Registry = obs.NewRegistry()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 32
	queries := make([]mcost.Vector, n)
	for i := range queries {
		queries[i] = mcost.Vector{
			0.1 + 0.025*float64(i),
			0.9 - 0.025*float64(i),
			0.5,
			0.3 + 0.01*float64(i),
		}
	}
	resps = make([]QueryResponse, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/range",
				map[string]interface{}{"query": queries[i], "radius": 0.3})
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("query %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			if err := json.Unmarshal(body, &resps[i]); err != nil {
				errs <- fmt.Errorf("query %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Bit-identical to direct execution regardless of batching.
	for i, q := range queries {
		want, err := ix.Range(q, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		got := resps[i].Matches
		if len(got) != len(want) {
			t.Fatalf("query %d: HTTP %d matches, direct %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j].OID != want[j].OID ||
				math.Float64bits(got[j].Distance) != math.Float64bits(want[j].Distance) {
				t.Fatalf("query %d match %d diverges from direct execution", i, j)
			}
		}
	}
	return s.Registry().Snapshot().Counters["server.node_reads"], resps
}

// TestE2EMicroBatchAmortizesNodeReads pins the acceptance ratio: with 32
// concurrent same-radius queries and a batch window that queues 16 of
// them per dispatch, the shared-traversal batches spend ≥1.5× fewer
// node reads than per-request dispatch — measured by the server's own
// obs counters, not wall-clock luck.
func TestE2EMicroBatchAmortizesNodeReads(t *testing.T) {
	ix := testIndex(t)

	solo, _ := runBatchProbe(t, ix, Config{})
	batched, resps := runBatchProbe(t, ix, Config{
		Batch: BatchConfig{Window: 2 * time.Second, MaxBatch: 16},
	})

	// 32 queries with MaxBatch 16 flush by size into exactly two
	// batches; every response must report a full window.
	for i, r := range resps {
		if r.BatchSize != 16 {
			t.Fatalf("query %d dispatched in batch of %d, want 16", i, r.BatchSize)
		}
	}
	if solo <= 0 || batched <= 0 {
		t.Fatalf("node-read counters empty: solo=%d batched=%d", solo, batched)
	}
	ratio := float64(solo) / float64(batched)
	t.Logf("node reads: per-request=%d batched=%d amortization=%.2fx", solo, batched, ratio)
	if ratio < 1.5 {
		t.Fatalf("micro-batching amortized node reads only %.2fx (per-request %d, batched %d); want >= 1.5x",
			ratio, solo, batched)
	}
}
