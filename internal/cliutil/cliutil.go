// Package cliutil holds the engine and flag plumbing shared by the
// mcost commands. mcost-query, mcost-exp and mcost-serve all build the
// same stack — dataset, M-tree options, optional sharding, optional
// paged storage with fault injection, cost-model budgets — and used to
// re-declare the same flags with drifting help text. Each command
// registers the groups it needs with its own defaults and keeps only
// its genuinely command-specific flags local.
package cliutil

import (
	"flag"
	"fmt"
	"time"

	"mcost"
	"mcost/internal/dataset"
	"mcost/internal/recal"
	"mcost/internal/rescache"
)

// DatasetFlags selects the dataset (-dataset, -file, -n, -dim).
type DatasetFlags struct {
	Kind string
	File string
	N    int
	Dim  int
}

// RegisterDataset registers the dataset flags on fs with the given
// defaults.
func RegisterDataset(fs *flag.FlagSet, kind string, n, dim int) *DatasetFlags {
	f := &DatasetFlags{}
	fs.StringVar(&f.Kind, "dataset", kind, "clustered | uniform | words | hdc | heavytail")
	fs.StringVar(&f.File, "file", "", "load dataset from file instead of generating")
	fs.IntVar(&f.N, "n", n, "dataset size")
	fs.IntVar(&f.Dim, "dim", dim, "dimensionality (vector datasets; codeword bits for hdc)")
	return f
}

// Load generates or loads the selected dataset.
func (f *DatasetFlags) Load(seed int64) (*dataset.Dataset, error) {
	if f.File != "" {
		return dataset.LoadFile(f.File)
	}
	switch f.Kind {
	case "clustered":
		return dataset.PaperClustered(f.N, f.Dim, seed), nil
	case "uniform":
		return dataset.Uniform(f.N, f.Dim, seed), nil
	case "words":
		return dataset.Words(f.N, seed), nil
	case "hdc":
		// The curse-by-construction workload: Hamming codewords whose
		// distances concentrate binomially. -dim sets the codeword width;
		// the classic HDC regime is 10,000 bits.
		bits := f.Dim
		if bits <= 0 {
			bits = 10_000
		}
		return dataset.HDC(f.N, bits, seed), nil
	case "heavytail":
		return dataset.HeavyTailClustered(f.N, f.Dim, 10, seed), nil
	default:
		return nil, fmt.Errorf("unknown dataset kind %q", f.Kind)
	}
}

// TreeFlags tune the M-tree build (-pagesize, -seed, -workers).
type TreeFlags struct {
	PageSize int
	Seed     int64
	Workers  int
	Layout   string
}

// RegisterTree registers the tree flags on fs; seed is the
// command-specific default.
func RegisterTree(fs *flag.FlagSet, seed int64) *TreeFlags {
	f := &TreeFlags{}
	fs.IntVar(&f.PageSize, "pagesize", 4096, "M-tree node size in bytes")
	fs.Int64Var(&f.Seed, "seed", seed, "random seed")
	fs.IntVar(&f.Workers, "workers", 0, "worker goroutines for estimation and query batches (0 = all CPUs); results are identical at any count")
	fs.StringVar(&f.Layout, "layout", "memory", "node layout for query serving: memory | arena | arena-mmap; arena freezes the tree into flat columnar slabs with batched distance kernels (bit-identical results), arena-mmap serves them from a memory-mapped slab file")
	return f
}

// Options assembles the build options over the given storage stack.
func (f *TreeFlags) Options(storage mcost.StorageOptions) mcost.Options {
	opt := mcost.Options{PageSize: f.PageSize, Seed: f.Seed, Workers: f.Workers, Storage: storage}
	switch f.Layout {
	case "arena":
		opt.Arena = mcost.ArenaOptions{Enabled: true}
	case "arena-mmap":
		opt.Arena = mcost.ArenaOptions{Enabled: true, Mmap: true}
	}
	return opt
}

// ValidateLayout rejects unknown -layout spellings early, before a
// build silently runs without the arena.
func (f *TreeFlags) ValidateLayout() error {
	switch f.Layout {
	case "", "memory", "arena", "arena-mmap":
		return nil
	}
	return fmt.Errorf("unknown -layout %q (memory | arena | arena-mmap)", f.Layout)
}

// ShardFlags select the sharded engine (-shards, -shard-assign,
// -batch).
type ShardFlags struct {
	Shards int
	Assign string
	Batch  int
}

// RegisterShards registers the shard flags on fs with the
// command-specific defaults. A negative batch leaves -batch
// unregistered, for commands with their own batching (mcost-serve
// micro-batches by window, not by flag).
func RegisterShards(fs *flag.FlagSet, shards int, assign string, batch int) *ShardFlags {
	f := &ShardFlags{}
	fs.IntVar(&f.Shards, "shards", shards, "partition the dataset across this many independent M-trees; queries fan out in parallel and k-NN skips shards the cost model rules out")
	fs.StringVar(&f.Assign, "shard-assign", assign, "shard assignment with -shards > 1: round-robin | pivot")
	if batch >= 0 {
		fs.IntVar(&f.Batch, "batch", batch, "batch size for batched traversal; each node is fetched once per batch, so per-query reads amortize")
	}
	return f
}

// StorageFlags select the paged storage stack and its fault schedule
// (-paged, -cache-pages, -retry, -fault-*).
type StorageFlags struct {
	Paged      bool
	CachePages int
	Retry      int

	FaultSeed        int64
	FaultReadRate    float64
	FaultWriteRate   float64
	FaultTornRate    float64
	FaultCorruptRate float64
}

// RegisterStorage registers the storage flags on fs.
func RegisterStorage(fs *flag.FlagSet) *StorageFlags {
	f := &StorageFlags{}
	fs.BoolVar(&f.Paged, "paged", false, "mount trees on checksummed paged storage (CRC32-C per page; corruption surfaces as a typed error)")
	fs.IntVar(&f.CachePages, "cache-pages", 0, "LRU page-cache capacity for paged storage (0 = no cache)")
	fs.IntVar(&f.Retry, "retry", 0, "retry attempts per page operation for transient faults (0 = default 3, 1 = no retrying)")
	fs.Int64Var(&f.FaultSeed, "fault-seed", 1, "seed for the deterministic fault schedule")
	fs.Float64Var(&f.FaultReadRate, "fault-read-rate", 0, "probability a page read fails transiently (enables fault injection; implies -paged)")
	fs.Float64Var(&f.FaultWriteRate, "fault-write-rate", 0, "probability a page write fails transiently (implies -paged)")
	fs.Float64Var(&f.FaultTornRate, "fault-torn-rate", 0, "probability a page write is torn: half the page lands, then a transient error (implies -paged)")
	fs.Float64Var(&f.FaultCorruptRate, "fault-corrupt-rate", 0, "probability a page read returns bit-flipped data, caught by the page checksum (implies -paged)")
	return f
}

// FaultConfig assembles the fault schedule from the flags.
func (f *StorageFlags) FaultConfig() mcost.FaultConfig {
	return mcost.FaultConfig{
		Seed:            f.FaultSeed,
		ReadErrorRate:   f.FaultReadRate,
		WriteErrorRate:  f.FaultWriteRate,
		TornWriteRate:   f.FaultTornRate,
		ReadCorruptRate: f.FaultCorruptRate,
	}
}

// Options assembles the storage stack; any armed fault implies paged
// storage. metrics may be nil.
func (f *StorageFlags) Options(metrics *mcost.MetricsRegistry) mcost.StorageOptions {
	faults := f.FaultConfig()
	s := mcost.StorageOptions{
		Paged:         f.Paged || faults.Any(),
		CachePages:    f.CachePages,
		RetryAttempts: f.Retry,
		Metrics:       metrics,
	}
	if faults.Any() {
		s.Faults = &faults
	}
	return s
}

// CacheFlags size the metric-exact result cache (-cache-entries,
// -cache-max-radius).
type CacheFlags struct {
	Entries   int
	MaxRadius float64
}

// RegisterCache registers the result-cache flags on fs; entries is the
// command-specific default (0 = cache off).
func RegisterCache(fs *flag.FlagSet, entries int) *CacheFlags {
	f := &CacheFlags{}
	fs.IntVar(&f.Entries, "cache-entries", entries, "cache this many recent result sets and answer contained queries exactly from them by the triangle inequality (0 = off)")
	fs.Float64Var(&f.MaxRadius, "cache-max-radius", 0, "never cache a result whose verified ball radius exceeds this (0 = no limit)")
	return f
}

// Enabled reports whether the flags ask for a cache.
func (f *CacheFlags) Enabled() bool { return f.Entries > 0 }

// Build constructs the cache the flags describe over the dataset's
// metric space, or nil when the cache is off.
func (f *CacheFlags) Build(space *mcost.Space) (*rescache.Cache, error) {
	if !f.Enabled() {
		return nil, nil
	}
	return rescache.New(rescache.Config{
		Entries:   f.Entries,
		MaxRadius: f.MaxRadius,
		Dist:      space.Distance,
	})
}

// RecalFlags enable online cost-model recalibration (-recal,
// -recal-window, -recal-band).
type RecalFlags struct {
	Enabled bool
	Window  int
	Band    float64
}

// RegisterRecal registers the recalibration flags on fs.
func RegisterRecal(fs *flag.FlagSet) *RecalFlags {
	f := &RecalFlags{}
	fs.BoolVar(&f.Enabled, "recal", false, "keep the cost model live under inserts and deletes: maintain the distance histogram incrementally, learn per-level bias corrections from observed traversal costs, and raise a drift alarm when the windowed prediction error leaves the band")
	fs.IntVar(&f.Window, "recal-window", 0, "sliding window of recent executions the bias correction and drift alarm are computed over (0 = default 64)")
	fs.Float64Var(&f.Band, "recal-band", 0, "relative windowed prediction error that triggers a drift alarm (0 = default 0.5)")
	return f
}

// Config assembles the recalibration config; seed keeps the reservoir
// sampling deterministic alongside the build.
func (f *RecalFlags) Config(seed int64) recal.Config {
	return recal.Config{Window: f.Window, Band: f.Band, Seed: seed}
}

// Apply enables recalibration on whichever engine Build returned, when
// the flags ask for it. d seeds the single-index reservoir.
func (f *RecalFlags) Apply(ix *mcost.Index, sx *mcost.ShardedIndex, d *dataset.Dataset, seed int64) error {
	if !f.Enabled {
		return nil
	}
	cfg := f.Config(seed)
	if sx != nil {
		return sx.EnableRecalibration(cfg)
	}
	return ix.EnableRecalibration(cfg, d.Objects)
}

// EngineFlags select the serving engine and the planner ceiling
// (-engine, -plan-ceiling).
type EngineFlags struct {
	Mode    string
	Ceiling float64
}

// RegisterEngine registers the engine flags on fs; mode is the
// command-specific default ("tree" preserves the pre-advisor
// behavior, "auto" plans per query).
func RegisterEngine(fs *flag.FlagSet, mode string) *EngineFlags {
	f := &EngineFlags{}
	fs.StringVar(&f.Mode, "engine", mode, "query engine: tree | scan | auto; auto prices every query on both the M-tree (L-MCM) and the linear scan and runs the cheaper one")
	fs.Float64Var(&f.Ceiling, "plan-ceiling", 0, "reject a query when even its cheapest plan prices above this many node reads + distance computations (serving layer answers a typed 422 plan_rejected; 0 = no ceiling)")
	return f
}

// Apply parses -engine and sets the mode on whichever engine Build
// returned.
func (f *EngineFlags) Apply(ix *mcost.Index, sx *mcost.ShardedIndex) error {
	mode, err := mcost.ParseEngineMode(f.Mode)
	if err != nil {
		return err
	}
	if sx != nil {
		return sx.SetEngineMode(mode)
	}
	if ix != nil {
		return ix.SetEngineMode(mode)
	}
	return nil
}

// BudgetFlags bound query execution by the cost model (-budget-slack,
// and -query-timeout when the command supports cancellation).
type BudgetFlags struct {
	Slack   float64
	Timeout time.Duration
}

// RegisterBudget registers -budget-slack (and -query-timeout when
// withTimeout) on fs.
func RegisterBudget(fs *flag.FlagSet, withTimeout bool) *BudgetFlags {
	f := &BudgetFlags{}
	fs.Float64Var(&f.Slack, "budget-slack", 0, "stop a query once it spends this multiple of the cost model's L-MCM prediction, returning partial results (0 = unlimited)")
	if withTimeout {
		fs.DurationVar(&f.Timeout, "query-timeout", 0, "cancel a query after this duration, returning partial results (0 = none)")
	}
	return f
}

// Build constructs the engine the flags describe: a ShardedIndex when
// sf asks for more than one shard, a single Index otherwise. Exactly
// one of the returned engines is non-nil on success.
func Build(d *dataset.Dataset, opt mcost.Options, sf *ShardFlags) (*mcost.Index, *mcost.ShardedIndex, error) {
	if sf != nil && sf.Shards > 1 {
		assign, err := mcost.ParseShardAssignment(sf.Assign)
		if err != nil {
			return nil, nil, err
		}
		sx, err := mcost.BuildSharded(d.Space, d.Objects, opt, mcost.ShardOptions{Shards: sf.Shards, Assign: assign})
		if err != nil {
			return nil, nil, err
		}
		return nil, sx, nil
	}
	ix, err := mcost.Build(d.Space, d.Objects, opt)
	if err != nil {
		return nil, nil, err
	}
	return ix, nil, nil
}
