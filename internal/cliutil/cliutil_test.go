package cliutil

import (
	"flag"
	"testing"

	"mcost"
)

func newFlagSet() *flag.FlagSet {
	return flag.NewFlagSet("test", flag.ContinueOnError)
}

func TestDatasetFlagsLoad(t *testing.T) {
	fs := newFlagSet()
	df := RegisterDataset(fs, "words", 10_000, 10)
	if err := fs.Parse([]string{"-dataset", "uniform", "-n", "250", "-dim", "3"}); err != nil {
		t.Fatal(err)
	}
	d, err := df.Load(7)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 250 {
		t.Fatalf("loaded %d objects, want 250", d.N())
	}
	df.Kind = "nope"
	df.File = ""
	if _, err := df.Load(7); err == nil {
		t.Fatal("unknown dataset kind must fail")
	}
}

func TestTreeAndStorageOptions(t *testing.T) {
	fs := newFlagSet()
	tf := RegisterTree(fs, 42)
	sf := RegisterStorage(fs)
	if err := fs.Parse([]string{"-pagesize", "8192", "-workers", "2", "-fault-read-rate", "0.1"}); err != nil {
		t.Fatal(err)
	}
	if tf.Seed != 42 {
		t.Fatalf("seed default not honored: %d", tf.Seed)
	}
	storage := sf.Options(nil)
	if !storage.Paged {
		t.Fatal("an armed fault must imply paged storage")
	}
	if storage.Faults == nil || storage.Faults.ReadErrorRate != 0.1 {
		t.Fatalf("fault schedule not assembled: %+v", storage.Faults)
	}
	opt := tf.Options(storage)
	if opt.PageSize != 8192 || opt.Workers != 2 || !opt.Storage.Paged {
		t.Fatalf("options not assembled: %+v", opt)
	}

	// No faults, no -paged: plain in-memory stack.
	fs2 := newFlagSet()
	sf2 := RegisterStorage(fs2)
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if s := sf2.Options(nil); s.Paged || s.Faults != nil {
		t.Fatalf("default storage must be unpaged and fault-free: %+v", s)
	}
}

func TestBudgetFlagsTimeoutGate(t *testing.T) {
	fs := newFlagSet()
	RegisterBudget(fs, false)
	if fs.Lookup("budget-slack") == nil {
		t.Fatal("-budget-slack not registered")
	}
	if fs.Lookup("query-timeout") != nil {
		t.Fatal("-query-timeout must be gated off")
	}
	fs2 := newFlagSet()
	bf := RegisterBudget(fs2, true)
	if err := fs2.Parse([]string{"-budget-slack", "2.5", "-query-timeout", "30ms"}); err != nil {
		t.Fatal(err)
	}
	if bf.Slack != 2.5 || bf.Timeout.Milliseconds() != 30 {
		t.Fatalf("budget flags not parsed: %+v", bf)
	}
}

func TestBuildPicksEngine(t *testing.T) {
	fs := newFlagSet()
	df := RegisterDataset(fs, "uniform", 300, 3)
	tf := RegisterTree(fs, 1)
	shf := RegisterShards(fs, 1, "pivot", 1)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	d, err := df.Load(tf.Seed)
	if err != nil {
		t.Fatal(err)
	}
	ix, sx, err := Build(d, tf.Options(mcost.StorageOptions{}), shf)
	if err != nil {
		t.Fatal(err)
	}
	if ix == nil || sx != nil {
		t.Fatalf("1 shard must build a single Index, got ix=%v sx=%v", ix != nil, sx != nil)
	}

	shf.Shards = 3
	_, sx, err = Build(d, tf.Options(mcost.StorageOptions{}), shf)
	if err != nil {
		t.Fatal(err)
	}
	if sx == nil || len(sx.ShardSizes()) != 3 {
		t.Fatalf("3 shards must build a ShardedIndex with 3 shards")
	}

	shf.Assign = "bogus"
	if _, _, err := Build(d, tf.Options(mcost.StorageOptions{}), shf); err == nil {
		t.Fatal("bad shard assignment must fail")
	}
}
