package mcost

import (
	"mcost/internal/mtree"
	"mcost/internal/obs"
)

// QueryTrace records a per-query, level-resolved execution trace: node
// visits, distance computations, and pruning outcomes attributed per
// lemma (parent-distance vs covering-radius), indexed by tree level
// (root = level 1, matching the paper's convention and the per-level
// cost model L-MCM). A nil *QueryTrace disables recording at zero cost.
//
// A trace must not be shared across concurrent queries; give each query
// its own and Merge them afterwards in query order for deterministic
// aggregates.
type QueryTrace = obs.Trace

// MetricsRegistry is a process-wide registry of named counters and
// fixed-bin histograms, safe for concurrent use and mergeable across
// workers.
type MetricsRegistry = obs.Registry

// NewQueryTrace returns an empty trace ready to pass to RangeTraced or
// NNTraced.
func NewQueryTrace() *QueryTrace { return obs.NewTrace() }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// RangeTraced is Range with per-level trace recording into tr (which
// may be nil, degrading to exactly Range).
func (ix *Index) RangeTraced(q Object, radius float64, tr *QueryTrace) ([]Match, error) {
	if err := ix.validateQuery(q); err != nil {
		return nil, err
	}
	return ix.tree.Range(q, radius, mtree.QueryOptions{UseParentDist: true, Trace: tr})
}

// NNTraced is NN with per-level trace recording into tr (which may be
// nil, degrading to exactly NN).
func (ix *Index) NNTraced(q Object, k int, tr *QueryTrace) ([]Match, error) {
	if err := ix.validateQuery(q); err != nil {
		return nil, err
	}
	return ix.tree.NN(q, k, mtree.QueryOptions{UseParentDist: true, Trace: tr})
}
