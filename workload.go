package mcost

import "mcost/internal/workload"

// QueryClass is one component of a mixed workload: a weighted range or
// k-NN query shape.
type QueryClass = workload.QueryClass

// Workload is a weighted mix of query classes for capacity planning.
type Workload = workload.Workload

// WorkloadReport compares the model's predictions with measured
// execution for a workload mix.
type WorkloadReport = workload.Report

// WorkloadOptions configures RunWorkload.
type WorkloadOptions = workload.Options

// RunWorkload executes the mixed workload against the index with
// queries sampled from pool (objects following the data distribution)
// and scores the cost model's predictions per class and overall —
// the capacity-planning loop the paper motivates.
func (ix *Index) RunWorkload(w *Workload, pool []Object, opt WorkloadOptions) (*WorkloadReport, error) {
	return workload.Run(ix.tree, ix.model, w, pool, opt)
}

// LevelExplain is one level of a query explain: the L-MCM prediction
// next to the measured cost.
type LevelExplain struct {
	Level     int
	PredNodes float64
	PredDists float64
	ActNodes  int
	ActDists  int
}

// ExplainRange runs range(q, radius) without the parent-distance
// optimization (so the measurement is exactly what the model predicts)
// and returns the matches with a per-level prediction-vs-measurement
// breakdown.
func (ix *Index) ExplainRange(q Object, radius float64) ([]Match, []LevelExplain, error) {
	matches, profile, err := ix.tree.RangeProfile(q, radius)
	if err != nil {
		return nil, nil, err
	}
	pred := ix.model.RangeLByLevel(radius)
	out := make([]LevelExplain, len(profile))
	for i, p := range profile {
		out[i] = LevelExplain{Level: p.Level, ActNodes: p.Nodes, ActDists: p.Dists}
		if i < len(pred) {
			out[i].PredNodes = pred[i].Nodes
			out[i].PredDists = pred[i].Dists
		}
	}
	return matches, out, nil
}
