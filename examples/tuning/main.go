// Tuning: choose the M-tree node size that minimizes a combined
// CPU + I/O cost, reproducing Section 4.1 of the paper. Larger nodes
// mean fewer (but bigger) page reads and more distance computations per
// accessed node; when a distance costs milliseconds the optimum is an
// interior node size, which the cost model finds without running a
// single query.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"mcost"
)

func main() {
	const (
		dim = 5
		n   = 50_000
	)
	space := mcost.VectorSpace("Linf", dim)
	rng := rand.New(rand.NewSource(11))
	centers := make([]mcost.Vector, 10)
	for i := range centers {
		centers[i] = randPoint(rng, dim)
	}
	objects := make([]mcost.Object, n)
	for i := range objects {
		c := centers[rng.Intn(len(centers))]
		v := make(mcost.Vector, dim)
		for j := range v {
			v[j] = clamp01(c[j] + rng.NormFloat64()*0.1)
		}
		objects[i] = v
	}

	// The paper's Figure 5 setup: range queries whose ball covers 1% of
	// the hypercube volume, disk with 10ms positioning + 1ms/KB
	// transfer, 5ms per distance computation.
	radius := math.Pow(0.01, 1.0/dim) / 2
	disk := mcost.PaperDiskParams()
	sizes := []int{512, 1024, 2048, 4096, 8192, 16384, 32768, 65536}

	fmt.Printf("tuning node size for %d clustered %d-d objects, range radius %.3f\n", n, dim, radius)
	fmt.Printf("disk: %.0fms positioning + %.0fms/KB transfer; %.0fms per distance\n\n",
		disk.PosMS, disk.TransMSPerKB, disk.DistMS)

	best, points, err := mcost.TuneNodeSize(space, objects, sizes, radius, disk, mcost.Options{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%8s  %12s  %12s  %12s\n", "NS (KB)", "pred reads", "pred dists", "total (ms)")
	for _, p := range points {
		marker := " "
		if p.NodeSize == best {
			marker = "*"
		}
		fmt.Printf("%7.1f%s  %12.1f  %12.1f  %12.1f\n",
			float64(p.NodeSize)/1024, marker, p.Est.Nodes, p.Est.Dists, p.TotalMS)
	}
	fmt.Printf("\npredicted optimum: %.1f KB nodes (the paper finds 8 KB at n=10^6)\n", float64(best)/1024)
}

func randPoint(rng *rand.Rand, dim int) mcost.Vector {
	v := make(mcost.Vector, dim)
	for i := range v {
		v[i] = rng.Float64()
	}
	return v
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
