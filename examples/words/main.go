// Words: approximate string matching under the edit distance — the
// paper's motivating example ("given a set of keywords ... which is the
// expected cost to retrieve the 20 nearest neighbors of Q?"). Builds an
// M-tree over a synthetic 12k-word vocabulary, answers exactly that
// question with the cost model, then runs the query and compares.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"mcost"
)

// Syllable tables give the vocabulary an Italian-ish shape; any word
// list works — the index and model only see edit distances.
var (
	onsets  = []string{"b", "c", "d", "f", "g", "l", "m", "n", "p", "r", "s", "t", "v", "z", "ch", "gh", "st", "tr", "sc"}
	vowels  = []string{"a", "e", "i", "o", "u", "ia", "io"}
	endings = []string{"a", "e", "i", "o", "one", "ezza", "mente", "are", "ato"}
)

func main() {
	const vocabSize = 12_000
	rng := rand.New(rand.NewSource(3))
	vocab := makeVocabulary(rng, vocabSize)
	space := mcost.EditSpace(25) // max word length 25 => d+ = 25

	idx, err := mcost.Build(space, vocab, mcost.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d keywords under the edit distance (%d nodes, height %d)\n\n",
		idx.Size(), idx.NumNodes(), idx.Height())

	// The paper's question: expected cost of the 20 nearest neighbors?
	const k = 20
	pred := idx.PredictNN(k)
	fmt.Printf("the paper's opening question — cost to retrieve the %d nearest neighbors:\n", k)
	fmt.Printf("  predicted: %.1f page reads, %.1f edit-distance computations\n",
		pred.Nodes, pred.Dists)
	fmt.Printf("  expected distance of the %dth match: %.2f edits\n\n",
		k, idx.ExpectedNNDistance(k))

	query := "tempesta"
	idx.ResetCosts()
	nn, err := idx.NN(query, k)
	if err != nil {
		log.Fatal(err)
	}
	nodes, dists := idx.Costs()
	fmt.Printf("measured for Q=%q: %d page reads, %d distance computations\n", query, nodes, dists)
	fmt.Printf("nearest neighbors: ")
	for i, m := range nn[:10] {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s(%g)", m.Object, m.Distance)
	}
	fmt.Println(", ...")

	// Range flavor: everything within 2 edits, averaged over a batch of
	// word-shaped queries (the model predicts expectations over the
	// query distribution, not any single query).
	pred2 := idx.PredictRange(2)
	probes := makeVocabulary(rand.New(rand.NewSource(99)), 50)
	idx.ResetCosts()
	var totalResults int
	for _, p := range probes {
		ms, err := idx.Range(p, 2)
		if err != nil {
			log.Fatal(err)
		}
		totalResults += len(ms)
	}
	nodes, dists = idx.Costs()
	np := float64(len(probes))
	fmt.Printf("\nrange(Q, 2) over %d probe words: predicted %.1f reads / %.1f dists / ~%.1f results;",
		len(probes), pred2.Nodes, pred2.Dists, idx.PredictSelectivity(2))
	fmt.Printf("\n             measured averages:    %.1f reads / %.1f dists / %.1f results\n",
		float64(nodes)/np, float64(dists)/np, float64(totalResults)/np)
}

func makeVocabulary(rng *rand.Rand, n int) []mcost.Object {
	seen := make(map[string]bool, n)
	out := make([]mcost.Object, 0, n)
	for len(out) < n {
		var sb strings.Builder
		for s, syl := 0, 1+rng.Intn(3); s < syl; s++ {
			sb.WriteString(onsets[rng.Intn(len(onsets))])
			sb.WriteString(vowels[rng.Intn(len(vowels))])
		}
		sb.WriteString(endings[rng.Intn(len(endings))])
		w := sb.String()
		if len(w) > 25 {
			w = w[:25]
		}
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}
