// Quickstart: index 20,000 points of a 10-dimensional clustered dataset,
// run range and k-NN queries, and — the point of the library — predict
// their costs before running them, from nothing but the distance
// distribution and per-node statistics.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mcost"
)

func main() {
	// 1. A bounded metric space: the unit hypercube under L∞.
	const dim = 10
	space := mcost.VectorSpace("Linf", dim)

	// 2. Some data: 20k points in 10 Gaussian clusters (the paper's
	// "clustered" dataset family).
	rng := rand.New(rand.NewSource(7))
	centers := make([]mcost.Vector, 10)
	for i := range centers {
		centers[i] = randomPoint(rng, dim)
	}
	objects := make([]mcost.Object, 20_000)
	for i := range objects {
		c := centers[rng.Intn(len(centers))]
		v := make(mcost.Vector, dim)
		for j := range v {
			v[j] = clamp01(c[j] + rng.NormFloat64()*0.1)
		}
		objects[i] = v
	}

	// 3. Build: bulk-loads an M-tree (4 KB nodes), estimates the
	// distance distribution, fits the cost model.
	idx, err := mcost.Build(space, objects, mcost.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d objects: %d nodes, height %d\n\n",
		idx.Size(), idx.NumNodes(), idx.Height())

	// 4. Predict, then measure, range queries. The model assumes the
	// biased query model — queries follow the data distribution — so
	// draw queries near cluster centers, and average over a batch as
	// the paper does.
	const (
		radius   = 0.15
		nQueries = 100
	)
	queries := make([]mcost.Vector, nQueries)
	for i := range queries {
		queries[i] = nearCenter(rng, centers)
	}
	pred := idx.PredictRange(radius)
	fmt.Printf("range(Q, %.2f) predicted: %7.1f node reads, %9.1f distances, ~%.0f results\n",
		radius, pred.Nodes, pred.Dists, idx.PredictSelectivity(radius))

	idx.ResetCosts()
	var totalMatches int
	for _, q := range queries {
		matches, err := idx.Range(q, radius)
		if err != nil {
			log.Fatal(err)
		}
		totalMatches += len(matches)
	}
	nodes, dists := idx.Costs()
	fmt.Printf("range(Q, %.2f) measured:  %7.1f node reads, %9.1f distances, %.0f results (avg of %d queries)\n\n",
		radius, float64(nodes)/nQueries, float64(dists)/nQueries,
		float64(totalMatches)/nQueries, nQueries)

	// 5. Same for 10-NN queries, including the expected 10th-neighbor
	// distance (Eq. 11 of the paper).
	const k = 10
	nnPred := idx.PredictNN(k)
	fmt.Printf("NN(Q, %d)      predicted: %7.1f node reads, %9.1f distances, E[nn_%d] = %.3f\n",
		k, nnPred.Nodes, nnPred.Dists, k, idx.ExpectedNNDistance(k))

	idx.ResetCosts()
	var nnDistSum float64
	for _, q := range queries {
		nn, err := idx.NN(q, k)
		if err != nil {
			log.Fatal(err)
		}
		nnDistSum += nn[k-1].Distance
	}
	nodes, dists = idx.Costs()
	fmt.Printf("NN(Q, %d)      measured:  %7.1f node reads, %9.1f distances, nn_%d = %.3f\n",
		k, float64(nodes)/nQueries, float64(dists)/nQueries, k, nnDistSum/nQueries)
	fmt.Println("\n(measured distance computations fall below the prediction because real",
		"\n queries use the parent-distance optimization the model deliberately ignores)")
}

func nearCenter(rng *rand.Rand, centers []mcost.Vector) mcost.Vector {
	c := centers[rng.Intn(len(centers))]
	v := make(mcost.Vector, len(c))
	for j := range v {
		v[j] = clamp01(c[j] + rng.NormFloat64()*0.1)
	}
	return v
}

func randomPoint(rng *rand.Rand, dim int) mcost.Vector {
	v := make(mcost.Vector, dim)
	for i := range v {
		v[i] = rng.Float64()
	}
	return v
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
