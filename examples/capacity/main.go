// Capacity planning: size a similarity-search service before deploying
// it. Given an expected query mix (mostly nearest-neighbor lookups, some
// discovery scans), the cost model projects per-query I/O, CPU, and
// milliseconds — then the same mix is executed and the projection
// checked. The paper's pitch, end to end.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mcost"
)

func main() {
	const (
		dim = 10
		n   = 25_000
	)
	space := mcost.VectorSpace("Linf", dim)
	rng := rand.New(rand.NewSource(41))
	centers := make([]mcost.Vector, 10)
	for i := range centers {
		centers[i] = point(rng, dim)
	}
	draw := func() mcost.Vector {
		c := centers[rng.Intn(len(centers))]
		v := make(mcost.Vector, dim)
		for j := range v {
			v[j] = clamp(c[j] + rng.NormFloat64()*0.1)
		}
		return v
	}
	objects := make([]mcost.Object, n)
	for i := range objects {
		objects[i] = draw()
	}
	pool := make([]mcost.Object, 500)
	for i := range pool {
		pool[i] = draw()
	}

	idx, err := mcost.Build(space, objects, mcost.Options{Seed: 41})
	if err != nil {
		log.Fatal(err)
	}

	// The service's expected mix.
	mix := &mcost.Workload{Classes: []mcost.QueryClass{
		{Name: "nn-lookup", Weight: 70, K: 1},
		{Name: "similar-20", Weight: 25, K: 20},
		{Name: "discovery", Weight: 5, Radius: 0.3},
	}}

	rep, err := idx.RunWorkload(mix, pool, mcost.WorkloadOptions{Queries: 400, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("capacity plan for %d objects, %d-node M-tree\n\n", idx.Size(), idx.NumNodes())
	fmt.Printf("%-12s %4s %6s  %22s %22s %9s\n", "class", "wt", "ran", "predicted (IO/dists)", "measured (IO/dists)", "avg hits")
	for _, cr := range rep.Classes {
		fmt.Printf("%-12s %4.0f %6d  %10.1f / %-10.1f %10.1f / %-10.1f %8.1f\n",
			cr.Class.Name, cr.Class.Weight, cr.Queries,
			cr.Pred.Nodes, cr.Pred.Dists,
			cr.Measured.Nodes, cr.Measured.Dists,
			cr.Results)
	}
	fmt.Printf("\nper query, weighted over the mix:\n")
	fmt.Printf("  predicted: %6.1f page reads, %8.1f distances, %8.1f ms (paper's disk)\n",
		rep.PredPerQuery.Nodes, rep.PredPerQuery.Dists, rep.PredMSPerQuery)
	fmt.Printf("  measured:  %6.1f page reads, %8.1f distances, %8.1f ms\n",
		rep.MeasuredPerQuery.Nodes, rep.MeasuredPerQuery.Dists, rep.MeasuredMSPerQuery)
	qps := 1000 / rep.PredMSPerQuery
	fmt.Printf("\n=> one 1998-vintage disk+CPU sustains ~%.2f queries/second on this mix;\n", qps)
	fmt.Printf("   provisioning for 50 qps needs ~%.0f such units (or one modern SSD).\n", 50/qps+1)
}

func point(rng *rand.Rand, dim int) mcost.Vector {
	v := make(mcost.Vector, dim)
	for i := range v {
		v[i] = rng.Float64()
	}
	return v
}

func clamp(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
