// VP-tree vs M-tree: the same workload on both index structures the
// paper models. The vp-tree (static, main-memory) usually computes fewer
// distances; the M-tree adds paging, dynamic inserts, and far better
// cost predictability. The Section 5 vp-tree model is applied alongside
// the M-tree models.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mcost"
)

func main() {
	const (
		dim = 8
		n   = 20_000
	)
	space := mcost.VectorSpace("Linf", dim)
	rng := rand.New(rand.NewSource(21))
	objects := make([]mcost.Object, n)
	for i := range objects {
		v := make(mcost.Vector, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		objects[i] = v
	}
	queries := make([]mcost.Object, 100)
	for i := range queries {
		v := make(mcost.Vector, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		queries[i] = v
	}

	mt, err := mcost.Build(space, objects, mcost.Options{Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	vp, err := mcost.BuildVPTree(space, objects, mcost.VPOptions{M: 3, BucketSize: 4, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d uniform %d-d points: M-tree %d pages, vp-tree %d nodes\n\n",
		n, dim, mt.NumNodes(), vp.NumNodes())

	const radius = 0.2
	mtPred := mt.PredictRange(radius)
	vpPred := vp.PredictRange(radius)

	mt.ResetCosts()
	vp.ResetCosts()
	var mtResults, vpResults int
	for _, q := range queries {
		mr, err := mt.Range(q, radius)
		if err != nil {
			log.Fatal(err)
		}
		vr, err := vp.Range(q, radius)
		if err != nil {
			log.Fatal(err)
		}
		mtResults += len(mr)
		vpResults += len(vr)
	}
	if mtResults != vpResults {
		log.Fatalf("indexes disagree: %d vs %d results", mtResults, vpResults)
	}
	_, mtDists := mt.Costs()
	nq := float64(len(queries))

	fmt.Printf("range(Q, %.2f), averaged over %d queries (%d results each on average):\n\n",
		radius, len(queries), mtResults/len(queries))
	fmt.Printf("%-28s %14s %14s\n", "", "predicted", "measured")
	fmt.Printf("%-28s %14.1f %14.1f\n", "M-tree distances (N-MCM)", mtPred.Dists, float64(mtDists)/nq)
	fmt.Printf("%-28s %14.1f %14.1f\n", "vp-tree distances (Sec. 5)", vpPred.Dists, float64(vp.DistanceCount())/nq)
	fmt.Printf("\nthe static vp-tree computes fewer distances; the M-tree is paged,\n")
	fmt.Printf("dynamic, and its predictions are the tighter ones — the paper's trade-off.\n")
}
