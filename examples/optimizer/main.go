// Optimizer: the deployment the paper argues for — "apply optimizers'
// technology to metric query processing". The cost model is plain data
// (a distance histogram plus tree statistics), so it serializes to JSON
// and lives in a catalog; a query optimizer loads it and chooses an
// access path (index scan vs. sequential scan) without touching the
// index or the data.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"mcost"
)

func main() {
	// ---- Indexing side: build once, export the model. ----
	const (
		dim = 12
		n   = 30_000
	)
	space := mcost.VectorSpace("Linf", dim)
	rng := rand.New(rand.NewSource(31))
	objects := make([]mcost.Object, n)
	for i := range objects {
		v := make(mcost.Vector, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		objects[i] = v
	}
	idx, err := mcost.Build(space, objects, mcost.Options{Seed: 31})
	if err != nil {
		log.Fatal(err)
	}
	var catalog bytes.Buffer
	if err := idx.SaveModel(&catalog); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog entry: %d bytes of JSON for a %d-object index (%d nodes)\n\n",
		catalog.Len(), idx.Size(), idx.NumNodes())

	// ---- Optimizer side: no index, no data — just the catalog. ----
	model, err := mcost.LoadModel(bytes.NewReader(catalog.Bytes()))
	if err != nil {
		log.Fatal(err)
	}

	// Sequential scan costs: n distances, and n/(leaf capacity) page
	// reads if the objects were packed into the same 4 KB pages.
	scanDists := float64(model.N())
	scanPages := scanDists / 37 // ~37 12-d vectors per 4 KB page
	disk := mcost.PaperDiskParams()
	scanMS := disk.DistMS*scanDists + disk.IOCostMS(4096)*scanPages

	fmt.Printf("%-12s %14s %14s %14s %10s\n", "radius", "index dists", "index reads", "index ms", "choose")
	for _, radius := range []float64{0.05, 0.15, 0.25, 0.35, 0.45, 0.6} {
		est := model.RangeN(radius)
		indexMS := disk.DistMS*est.Dists + disk.IOCostMS(4096)*est.Nodes
		choice := "index"
		if indexMS >= scanMS {
			choice = "seq-scan"
		}
		fmt.Printf("%-12.2f %14.0f %14.0f %14.0f %10s\n",
			radius, est.Dists, est.Nodes, indexMS, choice)
	}
	fmt.Printf("\nsequential scan: %.0f distances, %.0f page reads, %.0f ms\n",
		scanDists, scanPages, scanMS)
	fmt.Println("\nthe crossover is exactly what the model exists to find: selective")
	fmt.Println("queries use the M-tree, broad ones fall back to the scan.")
}
