package mcost

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func randomVectors(n, dim int, seed int64) []Object {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Object, n)
	for i := range out {
		v := make(Vector, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		out[i] = v
	}
	return out
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, randomVectors(10, 2, 1), Options{}); err == nil {
		t.Error("nil space accepted")
	}
	if _, err := Build(VectorSpace("L2", 2), nil, Options{}); err == nil {
		t.Error("empty objects accepted")
	}
	if _, err := Build(VectorSpace("L2", 2), randomVectors(1, 2, 1), Options{}); err == nil {
		t.Error("single object accepted")
	}
}

func TestEndToEndVectors(t *testing.T) {
	space := VectorSpace("Linf", 6)
	objs := randomVectors(3000, 6, 2)
	ix, err := Build(space, objs, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Size() != 3000 || ix.Height() < 2 || ix.NumNodes() < 3 {
		t.Fatalf("shape: size %d height %d nodes %d", ix.Size(), ix.Height(), ix.NumNodes())
	}
	q := Vector{0.5, 0.5, 0.5, 0.5, 0.5, 0.5}
	const radius = 0.25

	got, err := ix.Range(q, radius)
	if err != nil {
		t.Fatal(err)
	}
	// Verify against a scan.
	want := 0
	for _, o := range objs {
		if space.Distance(q, o) <= radius {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("range returned %d, scan found %d", len(got), want)
	}

	nn, err := ix.NN(q, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 7 {
		t.Fatalf("NN returned %d", len(nn))
	}
	for i := 1; i < len(nn); i++ {
		if nn[i].Distance < nn[i-1].Distance {
			t.Fatal("NN not sorted")
		}
	}

	// Predictions roughly match the measured workload.
	ix.ResetCosts()
	const trials = 50
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < trials; i++ {
		qq := make(Vector, 6)
		for j := range qq {
			qq[j] = rng.Float64()
		}
		if _, err := ix.Range(qq, radius); err != nil {
			t.Fatal(err)
		}
	}
	nodes, dists := ix.Costs()
	est := ix.PredictRange(radius)
	actNodes := float64(nodes) / trials
	actDists := float64(dists) / trials
	if est.Nodes < actNodes*0.7 {
		// The model upper-bounds the pruned search it predicts for.
		t.Fatalf("predicted %.1f nodes, measured %.1f", est.Nodes, actNodes)
	}
	if est.Dists < actDists {
		t.Fatalf("predicted %.1f dists below pruned measurement %.1f", est.Dists, actDists)
	}
	if est.Dists > actDists*4 {
		t.Fatalf("prediction %.1f wildly above measurement %.1f", est.Dists, actDists)
	}

	// Level model close to node model.
	lv := ix.PredictRangeLevel(radius)
	if math.Abs(lv.Nodes-est.Nodes)/est.Nodes > 0.5 {
		t.Fatalf("L-MCM %.1f far from N-MCM %.1f", lv.Nodes, est.Nodes)
	}

	// Selectivity: the model predicts the average over random queries
	// (the biased query model), so measure that average, not the single
	// center query above.
	var totalMatches int
	rng2 := rand.New(rand.NewSource(11))
	for i := 0; i < trials; i++ {
		qq := make(Vector, 6)
		for j := range qq {
			qq[j] = rng2.Float64()
		}
		ms, err := ix.Range(qq, radius)
		if err != nil {
			t.Fatal(err)
		}
		totalMatches += len(ms)
	}
	avgMatches := float64(totalMatches) / trials
	sel := ix.PredictSelectivity(radius)
	if sel <= 0 || math.Abs(sel-avgMatches)/math.Max(avgMatches, 1) > 0.5 {
		t.Fatalf("selectivity %.1f, measured average %.1f", sel, avgMatches)
	}

	// NN predictions positive and bounded by tree size.
	nnEst := ix.PredictNN(1)
	if nnEst.Nodes <= 0 || nnEst.Nodes > float64(ix.NumNodes()) {
		t.Fatalf("NN nodes estimate %.1f", nnEst.Nodes)
	}
	if lvl := ix.PredictNNLevel(1); lvl.Dists <= 0 {
		t.Fatalf("NN level estimate %+v", lvl)
	}

	// Expected NN distance increases with k and sits inside (0, d+).
	e1, e10 := ix.ExpectedNNDistance(1), ix.ExpectedNNDistance(10)
	if !(0 < e1 && e1 < e10 && e10 < space.Bound) {
		t.Fatalf("E[nn1]=%g E[nn10]=%g", e1, e10)
	}

	// F is a CDF.
	F := ix.DistanceDistribution()
	if F(0) != 0 || F(space.Bound) != 1 || F(0.3) > F(0.6) {
		t.Fatal("distance distribution is not a CDF")
	}
}

func TestEndToEndWords(t *testing.T) {
	space := EditSpace(25)
	words := []Object{}
	rng := rand.New(rand.NewSource(4))
	letters := "abcdefgh"
	seen := map[string]bool{}
	for len(words) < 800 {
		n := 3 + rng.Intn(9)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[rng.Intn(len(letters))]
		}
		w := string(b)
		if !seen[w] {
			seen[w] = true
			words = append(words, w)
		}
	}
	ix, err := Build(space, words, Options{PageSize: 1024, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.Range("abcdefg", 2)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, o := range words {
		if space.Distance("abcdefg", o) <= 2 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("edit range: %d vs %d", len(got), want)
	}
	if est := ix.PredictRange(2); est.Dists <= 0 {
		t.Fatalf("prediction %+v", est)
	}
}

func TestIncrementalBuild(t *testing.T) {
	space := VectorSpace("L2", 4)
	objs := randomVectors(600, 4, 6)
	ix, err := Build(space, objs, Options{Incremental: true, PageSize: 1024, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Size() != 600 {
		t.Fatalf("size %d", ix.Size())
	}
	if _, err := ix.NN(objs[0], 3); err != nil {
		t.Fatal(err)
	}
}

func TestHVFacade(t *testing.T) {
	space := VectorSpace("Linf", 10)
	objs := randomVectors(1500, 10, 8)
	res, err := HV(space, objs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.HV < 0.9 {
		t.Fatalf("HV of uniform data = %g", res.HV)
	}
}

func TestTuneNodeSize(t *testing.T) {
	space := VectorSpace("Linf", 5)
	objs := randomVectors(3000, 5, 9)
	sizes := []int{512, 2048, 8192, 32768}
	radius := math.Pow(0.01, 0.2) / 2
	best, points, err := TuneNodeSize(space, objs, sizes, radius, PaperDiskParams(), Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(sizes) {
		t.Fatalf("got %d points", len(points))
	}
	found := false
	for _, s := range sizes {
		if best == s {
			found = true
		}
	}
	if !found {
		t.Fatalf("best size %d not among candidates", best)
	}
	// Predicted I/O must fall as nodes grow (the Figure 5(a) shape);
	// which size wins the combined cost depends on n.
	for i := 1; i < len(points); i++ {
		if points[i].Est.Nodes > points[i-1].Est.Nodes {
			t.Fatalf("predicted node reads rose from %.1f to %.1f as pages grew",
				points[i-1].Est.Nodes, points[i].Est.Nodes)
		}
	}
	if _, _, err := TuneNodeSize(space, objs, nil, radius, PaperDiskParams(), Options{}); err == nil {
		t.Fatal("empty sweep accepted")
	}
}

func TestPredictTotalMS(t *testing.T) {
	space := VectorSpace("Linf", 3)
	objs := randomVectors(500, 3, 10)
	ix, err := Build(space, objs, Options{PageSize: 4096, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	est := CostEstimate{Nodes: 2, Dists: 10}
	want := 5.0*10 + (10+4)*2
	if got := ix.PredictTotalMS(est, PaperDiskParams()); math.Abs(got-want) > 1e-9 {
		t.Fatalf("total = %g, want %g", got, want)
	}
}

func TestComplexQueriesFacade(t *testing.T) {
	space := VectorSpace("Linf", 4)
	objs := randomVectors(2000, 4, 12)
	ix, err := Build(space, objs, Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	preds := []Pred{
		{Q: Vector{0.3, 0.3, 0.3, 0.3}, Radius: 0.3},
		{Q: Vector{0.6, 0.6, 0.6, 0.6}, Radius: 0.35},
	}
	and, err := ix.RangeAnd(preds)
	if err != nil {
		t.Fatal(err)
	}
	or, err := ix.RangeOr(preds)
	if err != nil {
		t.Fatal(err)
	}
	// Scan reference.
	var wantAnd, wantOr int
	for _, o := range objs {
		in0 := space.Distance(preds[0].Q, o) <= preds[0].Radius
		in1 := space.Distance(preds[1].Q, o) <= preds[1].Radius
		if in0 && in1 {
			wantAnd++
		}
		if in0 || in1 {
			wantOr++
		}
	}
	if len(and) != wantAnd || len(or) != wantOr {
		t.Fatalf("AND %d/%d, OR %d/%d", len(and), wantAnd, len(or), wantOr)
	}
	radii := []float64{0.3, 0.35}
	if p := ix.PredictRangeAnd(radii); p.Nodes <= 0 || p.Nodes > ix.PredictRangeOr(radii).Nodes {
		t.Fatalf("AND prediction %+v inconsistent with OR %+v", p, ix.PredictRangeOr(radii))
	}
	sAnd := ix.PredictSelectivityAnd(radii)
	sOr := ix.PredictSelectivityOr(radii)
	if sAnd < 0 || sOr < sAnd {
		t.Fatalf("selectivities AND %.1f OR %.1f", sAnd, sOr)
	}
}

func TestInsertDeleteRefreshFacade(t *testing.T) {
	space := VectorSpace("Linf", 3)
	objs := randomVectors(1000, 3, 14)
	ix, err := Build(space, objs, Options{PageSize: 1024, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	oid, err := ix.Insert(Vector{0.5, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if oid != 1000 {
		t.Fatalf("new OID %d, want 1000", oid)
	}
	if ix.Size() != 1001 {
		t.Fatalf("size %d", ix.Size())
	}
	if err := ix.Delete(Vector{0.5, 0.5, 0.5}, oid); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := ix.Delete(objs[i], uint64(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	if err := ix.RefreshModel(); err != nil {
		t.Fatal(err)
	}
	// After refresh, the full-radius prediction matches the shrunken tree.
	full := ix.PredictRange(space.Bound)
	if int(full.Nodes+0.5) != ix.NumNodes() {
		t.Fatalf("refreshed model predicts %.1f nodes, tree has %d", full.Nodes, ix.NumNodes())
	}
	if int(full.Dists) > 701+ix.NumNodes()*2 {
		t.Fatalf("refreshed dists %.0f too high for 700 objects", full.Dists)
	}
}

func TestSaveLoadModelFacade(t *testing.T) {
	space := VectorSpace("Linf", 5)
	objs := randomVectors(2000, 5, 16)
	ix, err := Build(space, objs, Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The standalone model predicts identically to the live index.
	for _, r := range []float64{0.1, 0.3} {
		a, b := ix.PredictRange(r), m.RangeN(r)
		if math.Abs(a.Nodes-b.Nodes) > 1e-9 || math.Abs(a.Dists-b.Dists) > 1e-9 {
			t.Fatalf("r=%g: index %+v, loaded model %+v", r, a, b)
		}
	}
}

func TestSimilarityJoinFacade(t *testing.T) {
	space := VectorSpace("Linf", 3)
	objs := randomVectors(400, 3, 18)
	ix, err := Build(space, objs, Options{PageSize: 1024, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	const eps = 0.1
	pairs, err := ix.SimilarityJoin(eps)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < len(objs); i++ {
		for j := i + 1; j < len(objs); j++ {
			if space.Distance(objs[i], objs[j]) <= eps {
				want++
			}
		}
	}
	if len(pairs) != want {
		t.Fatalf("join found %d pairs, scan %d", len(pairs), want)
	}
	est := ix.PredictJoin(eps)
	if est.Pairs <= 0 || est.Dists <= 0 {
		t.Fatalf("join estimate %+v", est)
	}
	if math.Abs(est.Pairs-float64(want))/math.Max(float64(want), 1) > 0.5 {
		t.Fatalf("join pairs estimate %.0f vs actual %d", est.Pairs, want)
	}
}

func TestExplainRange(t *testing.T) {
	space := VectorSpace("Linf", 4)
	objs := randomVectors(2000, 4, 21)
	ix, err := Build(space, objs, Options{PageSize: 1024, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	q := Vector{0.4, 0.4, 0.4, 0.4}
	matches, levels, err := ix.ExplainRange(q, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != ix.Height() {
		t.Fatalf("explain has %d levels, height %d", len(levels), ix.Height())
	}
	want, err := ix.Range(q, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != len(want) {
		t.Fatalf("explain found %d matches, Range %d", len(matches), len(want))
	}
	var actTotal int
	for _, l := range levels {
		if l.PredNodes <= 0 || l.PredDists <= 0 {
			t.Fatalf("level %d: empty prediction", l.Level)
		}
		actTotal += l.ActNodes
	}
	if actTotal <= 0 {
		t.Fatal("no measured accesses")
	}
	// Root level is always read exactly once.
	if levels[0].ActNodes != 1 {
		t.Fatalf("root level read %d times", levels[0].ActNodes)
	}
}

func TestPlanIndexAgainstBuiltIndex(t *testing.T) {
	space := VectorSpace("Linf", 6)
	objs := randomVectors(6000, 6, 23)
	// Plan from a 1500-object sample...
	plan, err := PlanIndex(space, objs[:1500], len(objs), Options{Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	// ...then actually build and compare.
	ix, err := Build(space, objs, Options{Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Height() != ix.Height() {
		t.Errorf("planned height %d, built %d", plan.Height(), ix.Height())
	}
	if p, a := plan.NumNodes(), ix.NumNodes(); math.Abs(float64(p-a))/float64(a) > 0.5 {
		t.Errorf("planned %d nodes, built %d", p, a)
	}
	const radius = 0.2
	planned := plan.PredictRange(radius)
	fitted := ix.PredictRange(radius)
	if planned.Dists < fitted.Dists/2.5 || planned.Dists > fitted.Dists*2.5 {
		t.Errorf("planned dists %.1f vs fitted model %.1f", planned.Dists, fitted.Dists)
	}
	if nn := plan.PredictNN(5); nn.Nodes <= 0 || nn.Dists <= 0 {
		t.Errorf("planned NN %+v", nn)
	}
}

func TestPlanIndexValidation(t *testing.T) {
	space := VectorSpace("L2", 2)
	objs := randomVectors(10, 2, 25)
	if _, err := PlanIndex(nil, objs, 100, Options{}); err == nil {
		t.Error("nil space accepted")
	}
	if _, err := PlanIndex(space, objs[:1], 100, Options{}); err == nil {
		t.Error("tiny sample accepted")
	}
	if _, err := PlanIndex(space, objs, 1, Options{}); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestNNApproxRecallAndSavings(t *testing.T) {
	space := VectorSpace("Linf", 8)
	objs := randomVectors(5000, 8, 29)
	ix, err := Build(space, objs, Options{Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	queries := randomVectors(60, 8, 31)
	const k = 10

	ix.ResetCosts()
	exact := make([][]Match, len(queries))
	for i, q := range queries {
		exact[i], err = ix.NN(q, k)
		if err != nil {
			t.Fatal(err)
		}
	}
	_, exactDists := ix.Costs()

	ix.ResetCosts()
	var found, total int
	for i, q := range queries {
		approx, err := ix.NNApprox(q, k, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		want := map[uint64]bool{}
		for _, m := range exact[i] {
			want[m.OID] = true
		}
		for _, m := range approx {
			if want[m.OID] {
				found++
			}
		}
		total += len(exact[i])
	}
	_, approxDists := ix.Costs()

	recall := float64(found) / float64(total)
	if recall < 0.8 {
		t.Fatalf("recall %.2f below 0.8 at 95%% confidence", recall)
	}
	if approxDists >= exactDists {
		t.Fatalf("approximate search cost %d not below exact %d", approxDists, exactDists)
	}
	// Confidence 1 degrades to exact.
	full, err := ix.NNApprox(queries[0], k, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full {
		if full[i].Distance != exact[0][i].Distance {
			t.Fatalf("confidence=1 rank %d: %g vs %g", i, full[i].Distance, exact[0][i].Distance)
		}
	}
}

func TestIndexStats(t *testing.T) {
	space := VectorSpace("Linf", 4)
	objs := randomVectors(1500, 4, 34)
	ix, err := Build(space, objs, Options{PageSize: 1024, Seed: 35})
	if err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if st.Objects != 1500 || st.Height != ix.Height() || st.Nodes != ix.NumNodes() {
		t.Fatalf("stats %+v disagree with index", st)
	}
	if st.LeafNodes <= 0 || st.AvgLeafEntries <= 0 {
		t.Fatalf("leaf stats %+v", st)
	}
	if st.AvgLeafRadius <= 0 || st.MaxLeafRadius < st.AvgLeafRadius {
		t.Fatalf("radius stats %+v", st)
	}
	if len(st.LevelNodes) != st.Height || st.LevelNodes[0] != 1 {
		t.Fatalf("level nodes %v", st.LevelNodes)
	}
	sum := 0
	for _, c := range st.LevelNodes {
		sum += c
	}
	if sum != st.Nodes {
		t.Fatalf("level sums %d != nodes %d", sum, st.Nodes)
	}
}
