package mcost

import (
	"math"
	"testing"

	"mcost/internal/recal"
)

// The facade side of the k-clamping convention: admission pricing and
// prediction must stay finite for any k, on both the plain and the
// recalibrated path, because PriceNN feeds budgets and router timeouts
// directly.

func TestPricingClampsK(t *testing.T) {
	space := VectorSpace("L2", 4)
	objs := randomVectors(120, 4, 9)
	ix, err := Build(space, objs, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		n := len(objs)
		for _, k := range []int{-4, 0, 1, n, n + 50, 1 << 28} {
			for name, e := range map[string]CostEstimate{
				"PriceNN":        ix.PriceNN(k),
				"PredictNN":      ix.PredictNN(k),
				"PredictNNLevel": ix.PredictNNLevel(k),
			} {
				if math.IsNaN(e.Nodes) || math.IsInf(e.Nodes, 0) || math.IsNaN(e.Dists) || math.IsInf(e.Dists, 0) || e.Nodes < 0 || e.Dists < 0 {
					t.Fatalf("%s: %s(%d) = %+v, want finite and non-negative", stage, name, k, e)
				}
			}
			if d := ix.ExpectedNNDistance(k); math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
				t.Fatalf("%s: ExpectedNNDistance(%d) = %v, want finite and non-negative", stage, k, d)
			}
		}
		if low, one := ix.PriceNN(0), ix.PriceNN(1); low != one {
			t.Fatalf("%s: PriceNN(0) = %+v, want the k=1 price %+v", stage, low, one)
		}
		if hi, full := ix.PriceNN(1<<28), ix.PriceNN(n); hi != full {
			t.Fatalf("%s: PriceNN(huge) = %+v, want the k=n price %+v", stage, hi, full)
		}
	}
	check("plain")
	if err := ix.EnableRecalibration(recal.Config{}, objs); err != nil {
		t.Fatal(err)
	}
	// Feed the bias window through the traced path so the corrected
	// estimates are exercised with real observations.
	for i := 0; i < 8; i++ {
		if _, err := ix.NNTraced(objs[i], 5, nil); err != nil {
			t.Fatal(err)
		}
	}
	check("recalibrated")
}
