package mcost_test

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"mcost"
	"mcost/internal/dataset"
)

// The churn equivalence contract: after an arbitrary seeded mix of
// inserts and deletes, a live engine must answer range and NN queries
// exactly like a fresh engine bulk-loaded over the surviving objects.
// The matrix extends the PR 4 option matrix with the write path:
// in-memory, paged, and faulty storage, single-tree and 3-shard
// engines, vector (L∞) and string (edit distance) data.

// churnEngine is the write-plus-query surface shared by *mcost.Index
// and *mcost.ShardedIndex.
type churnEngine interface {
	Insert(obj mcost.Object) (uint64, error)
	Delete(obj mcost.Object, oid uint64) error
	Range(q mcost.Object, radius float64) ([]mcost.Match, error)
	NN(q mcost.Object, k int) ([]mcost.Match, error)
	Size() int
}

// survivor couples a live object with the OID the churned engine knows
// it by.
type survivor struct {
	oid uint64
	obj mcost.Object
}

func buildChurnEngine(t *testing.T, ds *dataset.Dataset, objs []mcost.Object, shards int, storage mcost.StorageOptions) churnEngine {
	t.Helper()
	opt := mcost.Options{Seed: 5, Workers: 1, Storage: storage}
	if shards > 1 {
		sx, err := mcost.BuildSharded(ds.Space, objs, opt, mcost.ShardOptions{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if storage.Faults != nil {
			sx.SetFaultsEnabled(true)
		}
		return sx
	}
	ix, err := mcost.Build(ds.Space, objs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if storage.Faults != nil {
		ix.SetFaultsEnabled(true)
	}
	return ix
}

// sortedByOID returns matches ordered by OID (result emission order is
// a tree-shape artifact; the contract is about the set).
func sortedByOID(ms []mcost.Match) []mcost.Match {
	out := append([]mcost.Match(nil), ms...)
	sort.Slice(out, func(i, j int) bool { return out[i].OID < out[j].OID })
	return out
}

func TestChurnEquivalenceMatrix(t *testing.T) {
	type storageCase struct {
		name    string
		storage mcost.StorageOptions
	}
	storages := []storageCase{
		{"memory", mcost.StorageOptions{}},
		{"paged", mcost.StorageOptions{Paged: true, CachePages: 32}},
		{"faulty", mcost.StorageOptions{
			Paged: true,
			Faults: &mcost.FaultConfig{
				Seed:           9,
				ReadErrorRate:  0.02,
				WriteErrorRate: 0.01,
			},
		}},
	}
	type dsCase struct {
		name  string
		base  *dataset.Dataset
		extra *dataset.Dataset // insert stream
	}
	datasets := []dsCase{
		{"clustered", dataset.PaperClustered(400, 4, 2001), dataset.PaperClustered(300, 4, 7777)},
		{"words", dataset.Words(300, 2002), dataset.Words(200, 7778)},
	}

	for _, dc := range datasets {
		for _, sc := range storages {
			for _, shards := range []int{1, 3} {
				name := fmt.Sprintf("%s/%s/shards=%d", dc.name, sc.name, shards)
				t.Run(name, func(t *testing.T) {
					runChurnEquivalence(t, dc.base, dc.extra, shards, sc.storage)
				})
			}
		}
	}
}

func runChurnEquivalence(t *testing.T, base, extra *dataset.Dataset, shards int, storage mcost.StorageOptions) {
	eng := buildChurnEngine(t, base, base.Objects, shards, storage)

	// Bulk-loaded OIDs are positional: object i has OID i (globally, for
	// the sharded engine too).
	live := make([]survivor, 0, base.N()+extra.N())
	for i, obj := range base.Objects {
		live = append(live, survivor{oid: uint64(i), obj: obj})
	}

	// Property-style churn: a seeded random interleaving of inserts
	// (from the extra pool) and deletes (of a random live object),
	// biased toward inserts so the index grows through the run.
	rng := rand.New(rand.NewSource(31))
	nextExtra := 0
	for step := 0; step < 400; step++ {
		if rng.Float64() < 0.55 && nextExtra < extra.N() {
			obj := extra.Objects[nextExtra]
			nextExtra++
			oid, err := eng.Insert(obj)
			if err != nil {
				t.Fatalf("churn step %d: insert: %v", step, err)
			}
			live = append(live, survivor{oid: oid, obj: obj})
		} else if len(live) > 1 {
			i := rng.Intn(len(live))
			s := live[i]
			if err := eng.Delete(s.obj, s.oid); err != nil {
				t.Fatalf("churn step %d: delete OID %d: %v", step, s.oid, err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	if eng.Size() != len(live) {
		t.Fatalf("size after churn %d, survivors %d", eng.Size(), len(live))
	}

	// Deleting an already-deleted OID must fail loudly, not corrupt.
	if err := eng.Delete(extra.Objects[0], 1<<60); err == nil {
		t.Fatal("delete of unknown OID must error")
	}

	// Fresh engine over the survivors in ascending-OID order, on clean
	// in-memory storage: fresh OID i names the same object as
	// survivors[i].oid in the churned engine.
	sort.Slice(live, func(i, j int) bool { return live[i].oid < live[j].oid })
	objs := make([]mcost.Object, len(live))
	for i, s := range live {
		objs[i] = s.obj
	}
	fresh := buildChurnEngine(t, base, objs, shards, mcost.StorageOptions{})

	space := base.Space
	radius := 0.2 * space.Bound
	if space.Discrete {
		radius = math.Max(1, math.Floor(radius))
	}
	for qi := 0; qi < 10; qi++ {
		q := objs[(qi*37)%len(objs)]

		gotR, err := eng.Range(q, radius)
		if err != nil {
			t.Fatalf("churned range: %v", err)
		}
		wantR, err := fresh.Range(q, radius)
		if err != nil {
			t.Fatalf("fresh range: %v", err)
		}
		got, want := sortedByOID(gotR), sortedByOID(wantR)
		if len(got) != len(want) {
			t.Fatalf("query %d: churned range has %d matches, fresh %d", qi, len(got), len(want))
		}
		for i := range want {
			// Translate the fresh engine's positional OID back to the
			// churned engine's OID for the same object.
			wantOID := live[want[i].OID].oid
			if got[i].OID != wantOID ||
				math.Float64bits(got[i].Distance) != math.Float64bits(want[i].Distance) {
				t.Fatalf("query %d match %d: churned (%d, %x) vs fresh (%d, %x)",
					qi, i, got[i].OID, math.Float64bits(got[i].Distance),
					wantOID, math.Float64bits(want[i].Distance))
			}
		}

		gotN, err := eng.NN(q, 5)
		if err != nil {
			t.Fatalf("churned NN: %v", err)
		}
		wantN, err := fresh.NN(q, 5)
		if err != nil {
			t.Fatalf("fresh NN: %v", err)
		}
		if len(gotN) != len(wantN) {
			t.Fatalf("query %d: churned NN has %d matches, fresh %d", qi, len(gotN), len(wantN))
		}
		for i := range wantN {
			// Distances are the contract rank by rank; equal-distance
			// ties may resolve to different objects in differently
			// shaped trees, so OIDs are only pinned on strict ranks.
			if math.Float64bits(gotN[i].Distance) != math.Float64bits(wantN[i].Distance) {
				t.Fatalf("query %d NN rank %d: churned %x vs fresh %x",
					qi, i, math.Float64bits(gotN[i].Distance), math.Float64bits(wantN[i].Distance))
			}
		}
	}
}
