package mcost

import (
	"mcost/internal/core"
	"mcost/internal/mtree"
)

// Pred is one range predicate of a complex similarity query (the §6
// extension): all objects within Radius of Q.
type Pred = mtree.Pred

// RangeAnd returns the objects satisfying every predicate (conjunctive
// complex query).
func (ix *Index) RangeAnd(preds []Pred) ([]Match, error) {
	return ix.tree.RangeAnd(preds, mtree.QueryOptions{UseParentDist: true})
}

// RangeOr returns the objects satisfying at least one predicate
// (disjunctive complex query).
func (ix *Index) RangeOr(preds []Pred) ([]Match, error) {
	return ix.tree.RangeOr(preds, mtree.QueryOptions{UseParentDist: true})
}

// PredictRangeAnd predicts conjunctive-query costs under predicate
// independence: a node is accessed with probability Π F(r(N) + rq_i).
func (ix *Index) PredictRangeAnd(radii []float64) CostEstimate {
	return ix.model.RangeAndN(radii)
}

// PredictRangeOr predicts disjunctive-query costs:
// Pr{access} = 1 − Π (1 − F(r(N) + rq_i)).
func (ix *Index) PredictRangeOr(radii []float64) CostEstimate {
	return ix.model.RangeOrN(radii)
}

// PredictSelectivityAnd predicts the conjunction's result cardinality
// under predicate independence.
func (ix *Index) PredictSelectivityAnd(radii []float64) float64 {
	return ix.model.RangeAndObjects(radii)
}

// PredictSelectivityOr predicts the disjunction's result cardinality.
func (ix *Index) PredictSelectivityOr(radii []float64) float64 {
	return ix.model.RangeOrObjects(radii)
}

// JoinPair is one result of a similarity self-join.
type JoinPair = mtree.JoinPair

// JoinEstimate is a predicted self-join cost and result size.
type JoinEstimate = core.JoinEstimate

// SimilarityJoin returns every unordered pair of indexed objects within
// eps of each other, using the pruned tree-vs-tree traversal.
func (ix *Index) SimilarityJoin(eps float64) ([]JoinPair, error) {
	return ix.tree.SimilarityJoin(eps)
}

// PredictJoin predicts the self-join's cost and result size: node pairs
// are compared with probability F(r_i + r_j + eps), and C(n,2)·F(eps)
// object pairs qualify.
func (ix *Index) PredictJoin(eps float64) JoinEstimate {
	return ix.model.JoinN(eps)
}
