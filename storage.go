package mcost

import (
	"context"
	"math"
	"time"

	"mcost/internal/budget"
	"mcost/internal/core"
	"mcost/internal/mtree"
	"mcost/internal/pager"
)

// Fault-tolerant storage and graceful degradation. A Build with
// StorageOptions.Paged mounts the tree on the resilient page stack —
// checksummed pages over an in-memory base, optionally wrapped in fault
// injection (for testing), bounded retry, and an LRU cache — and the
// context-aware query methods below add cancellation and cost-budgeted
// stops on top of any index.

// QueryBudget caps one query's node reads and distance computations;
// zero fields are unlimited. Seed it from the cost model via
// Index.RangeBudget / Index.NNBudget to let the model gate its own
// queries.
type QueryBudget = budget.Budget

// FaultConfig is a deterministic storage fault schedule (seeded; every
// run with the same seed injects the same faults). Only meaningful for
// tests and resilience experiments.
type FaultConfig = pager.FaultConfig

// FaultStats counts the faults a schedule has injected.
type FaultStats = pager.FaultStats

// Typed failure sentinels, for errors.Is.
var (
	// ErrBudgetExceeded reports a query stopped by its QueryBudget; the
	// partial results found before the stop are returned with it.
	ErrBudgetExceeded = budget.ErrExceeded
	// ErrCorruptPage reports a page whose checksum did not verify.
	ErrCorruptPage = pager.ErrCorruptPage
	// ErrRetryExhausted reports a transient storage fault that survived
	// every retry attempt.
	ErrRetryExhausted = pager.ErrExhausted
	// ErrBadSnapshot reports a truncated or corrupted snapshot blob.
	ErrBadSnapshot = mtree.ErrBadSnapshot
)

// StorageOptions selects and tunes the storage stack under Build.
type StorageOptions struct {
	// Paged mounts the tree on checksummed pages instead of plain
	// in-memory nodes: every node access round-trips through the page
	// codec and verifies a CRC32-C, so at-rest corruption surfaces as
	// ErrCorruptPage instead of wrong results. Costs serialization work;
	// tree structure and query results are identical to memory mode.
	Paged bool
	// CachePages adds a write-through LRU of this many pages (0 = no
	// cache).
	CachePages int
	// RetryAttempts bounds the per-operation tries absorbing transient
	// faults (0 = default 3; 1 disables retrying).
	RetryAttempts int
	// RetryBackoff is the pause before the first retry, doubling per
	// further retry (0 = no sleeping, right for in-memory storage).
	RetryBackoff time.Duration
	// Faults, when non-nil, inserts a seeded fault-injection layer under
	// the retry layer. Implies Paged. The layer starts disabled so the
	// build itself is clean; flip it on with Index.SetFaultsEnabled(true)
	// to target queries.
	Faults *FaultConfig
	// Metrics, when non-nil, receives storage counters: pager operation
	// counts, "pager.retries", "pager.retry_exhausted", and
	// "mtree.corrupt_pages".
	Metrics *MetricsRegistry
}

func (s StorageOptions) enabled() bool { return s.Paged || s.Faults != nil }

// DefaultBudgetSlack is the budget slack factor used when a
// *WithBudget query is given slack <= 0: the query may spend this
// multiple of the model's predicted cost before being stopped. The
// predictions are accurate on average (~10%) but are per-workload
// means; individual queries vary, so the default leaves generous room
// and only catches pathological degeneration.
const DefaultBudgetSlack = 4.0

// buildStorage assembles the page stack for Build when storage options
// ask for one, returning the mounted tree options.
func buildStorage(space *Space, sample Object, opt Options) (mtree.Options, *pager.Stack, error) {
	mo := mtree.Options{
		Space:    space,
		PageSize: opt.PageSize,
		Seed:     opt.Seed,
		Metrics:  opt.Storage.Metrics,
	}
	if !opt.Storage.enabled() {
		return mo, nil, nil
	}
	codec, err := mtree.CodecFor(sample)
	if err != nil {
		return mo, nil, err
	}
	pageSize := opt.PageSize
	if pageSize == 0 {
		pageSize = 4096
	}
	stack, err := pager.NewMemStack(pager.StackOptions{
		PageSize:   mtree.PhysPageSize(pageSize),
		CachePages: opt.Storage.CachePages,
		Retry: pager.RetryOptions{
			Attempts:    opt.Storage.RetryAttempts,
			BackoffBase: opt.Storage.RetryBackoff,
		},
		Faults:  opt.Storage.Faults,
		Metrics: opt.Storage.Metrics,
	})
	if err != nil {
		return mo, nil, err
	}
	if stack.Faulty != nil {
		stack.Faulty.SetEnabled(false)
	}
	mo.Pager = stack.Top
	mo.Codec = codec
	return mo, stack, nil
}

// SetFaultsEnabled flips fault injection on a Build with
// StorageOptions.Faults; it reports whether a fault layer exists.
func (ix *Index) SetFaultsEnabled(on bool) bool {
	if ix.stack == nil || ix.stack.Faulty == nil {
		return false
	}
	ix.stack.Faulty.SetEnabled(on)
	return true
}

// FaultStats returns the injected-fault counts (zero without a fault
// layer).
func (ix *Index) FaultStats() FaultStats {
	if ix.stack == nil || ix.stack.Faulty == nil {
		return FaultStats{}
	}
	return ix.stack.Faulty.FaultStats()
}

// RangeCtx is Range honoring ctx and an optional budget: the traversal
// checks the context at every node access, and if b caps work the query
// stops with ErrBudgetExceeded once it would exceed it. On any stop —
// cancellation, deadline, or budget — the matches found so far are
// returned alongside the typed error; each is a true match within
// radius, completeness is what was given up.
func (ix *Index) RangeCtx(ctx context.Context, q Object, radius float64, b QueryBudget) ([]Match, error) {
	return ix.tree.RangeCtx(ctx, q, radius, mtree.QueryOptions{UseParentDist: true, Budget: b})
}

// NNCtx is NN honoring ctx and an optional budget (see RangeCtx). On a
// stop the best neighbors found so far are returned, closest first: true
// objects at true distances, but a closer neighbor may not have been
// reached yet.
func (ix *Index) NNCtx(ctx context.Context, q Object, k int, b QueryBudget) ([]Match, error) {
	return ix.tree.NNCtx(ctx, q, k, mtree.QueryOptions{UseParentDist: true, Budget: b})
}

// budgetFrom converts a model prediction into a hard cap: prediction ×
// slack, rounded up, floored at the tree height (a query must at least
// be able to walk root → leaf).
func (ix *Index) budgetFrom(est CostEstimate, slack float64) QueryBudget {
	if slack <= 0 {
		slack = DefaultBudgetSlack
	}
	floor := float64(ix.tree.Height())
	nodes := math.Ceil(est.Nodes * slack)
	if nodes < floor {
		nodes = floor
	}
	dists := math.Ceil(est.Dists * slack)
	if dists < floor {
		dists = floor
	}
	return QueryBudget{MaxNodeReads: int64(nodes), MaxDistCalcs: int64(dists)}
}

// RangeBudget derives a QueryBudget for range queries of the given
// radius: the L-MCM prediction times slack (<= 0 picks
// DefaultBudgetSlack). The prediction models a search without the
// parent-distance optimization, so it upper-bounds what RangeCtx
// actually spends — a well-behaved query never trips its budget.
func (ix *Index) RangeBudget(radius, slack float64) QueryBudget {
	return ix.budgetFrom(ix.model.RangeL(radius), slack)
}

// NNBudget derives a QueryBudget for k-NN queries (see RangeBudget).
func (ix *Index) NNBudget(k int, slack float64) QueryBudget {
	return ix.budgetFrom(ix.model.NNL(k), slack)
}

// RangeWithBudget runs a range query under the model-derived budget:
// admission control by the index's own cost model. A query whose
// observed cost stays near its prediction completes normally; one that
// degenerates (the high-dimensional near-linear-scan regime) is stopped
// at prediction × slack and returns its partial matches with
// ErrBudgetExceeded.
func (ix *Index) RangeWithBudget(ctx context.Context, q Object, radius, slack float64) ([]Match, error) {
	return ix.RangeCtx(ctx, q, radius, ix.RangeBudget(radius, slack))
}

// NNWithBudget is the k-NN analogue of RangeWithBudget.
func (ix *Index) NNWithBudget(ctx context.Context, q Object, k int, slack float64) ([]Match, error) {
	return ix.NNCtx(ctx, q, k, ix.NNBudget(k, slack))
}

// VPBudget derives a distance-computation budget for vp-tree queries
// from the Section 5 model: predicted visits and distances times slack.
func vpBudget(est core.VPCost, slack float64) QueryBudget {
	if slack <= 0 {
		slack = DefaultBudgetSlack
	}
	return QueryBudget{
		MaxNodeReads: int64(math.Ceil((est.InternalVisits + est.LeafVisits) * slack)),
		MaxDistCalcs: int64(math.Ceil(est.Dists * slack)),
	}
}

// RangeBudget derives a QueryBudget for vp-tree range queries (slack
// <= 0 picks DefaultBudgetSlack). Node reads count node visits: the
// vp-tree is main-memory.
func (vp *VPTree) RangeBudget(radius, slack float64) QueryBudget {
	return vpBudget(vp.model.RangeCost(radius), slack)
}

// NNBudget derives a QueryBudget for vp-tree k-NN queries.
func (vp *VPTree) NNBudget(k int, slack float64) QueryBudget {
	return vpBudget(vp.model.NNCost(k), slack)
}

// RangeCtx is VPTree.Range honoring ctx and an optional budget, with
// the same partial-result contract as Index.RangeCtx.
func (vp *VPTree) RangeCtx(ctx context.Context, q Object, radius float64, b QueryBudget) ([]VPMatch, error) {
	return vp.tree.RangeCtx(ctx, q, radius, b, nil, nil)
}

// NNCtx is VPTree.NN honoring ctx and an optional budget (see
// Index.NNCtx).
func (vp *VPTree) NNCtx(ctx context.Context, q Object, k int, b QueryBudget) ([]VPMatch, error) {
	return vp.tree.NNCtx(ctx, q, k, b, nil, nil)
}
