// Package mcost is a cost-model toolkit for similarity queries in metric
// spaces, implementing Ciaccia, Patella & Zezula, "A Cost Model for
// Similarity Queries in Metric Spaces" (PODS 1998).
//
// It bundles a full M-tree (paged, dynamic, balanced metric access
// method with bulk loading and optimal k-NN search), a vantage-point
// tree, distance-distribution estimation, and the paper's cost models:
// given only the distance distribution F of a dataset and compact tree
// statistics, the models predict the I/O (node reads) and CPU (distance
// computations) costs of range and k-nearest-neighbor queries, usually
// within ~10%.
//
// The five-line workflow:
//
//	space := mcost.VectorSpace("L2", 8)
//	idx, _ := mcost.Build(space, objects, mcost.Options{})
//	matches, _ := idx.NN(query, 10)
//	predicted := idx.PredictNN(10)      // before running anything
//	fmt.Println(predicted.Nodes, predicted.Dists)
//
// Everything deeper — promotion policies, paged storage, homogeneity
// indices, the vp-tree model, node-size tuning — is exposed through the
// same package; see the examples directory.
package mcost

import (
	"errors"
	"fmt"
	"io"

	"mcost/internal/core"
	"mcost/internal/dataset"
	"mcost/internal/distdist"
	"mcost/internal/histogram"
	"mcost/internal/metric"
	"mcost/internal/mtree"
	"mcost/internal/pager"
	"mcost/internal/recal"
)

// Object is any value a metric space can compare (metric.Vector values
// or strings for the built-in spaces).
type Object = metric.Object

// Vector is a point in a D-dimensional real space.
type Vector = metric.Vector

// Space describes a bounded metric space: a distance function plus its
// finite distance bound d+.
type Space = metric.Space

// Match is one query result: the object, its insertion-order OID, and
// its distance from the query.
type Match = mtree.Match

// CostEstimate is a predicted query cost: expected node reads (I/O) and
// distance computations (CPU).
type CostEstimate = core.CostEstimate

// DiskParams models a disk for combined-cost tuning (Section 4.1 of the
// paper): a node read costs PosMS + TransMSPerKB·NS, a distance DistMS.
type DiskParams = core.DiskParams

// VectorSpace returns a bounded metric space over the unit hypercube
// [0,1]^dim for name "L1", "L2", or "Linf".
func VectorSpace(name string, dim int) *Space { return metric.VectorSpace(name, dim) }

// EditSpace returns the space of strings up to maxLen bytes under the
// Levenshtein metric, d+ = maxLen.
func EditSpace(maxLen int) *Space { return metric.EditSpace(maxLen) }

// Options configures Build.
type Options struct {
	// PageSize is the M-tree node size in bytes (default 4096, as in
	// the paper's evaluation).
	PageSize int
	// Incremental inserts objects one by one instead of bulk loading.
	// Bulk loading (the default) matches the paper's setup and builds a
	// better tree with fewer distance computations.
	Incremental bool
	// HistogramBins overrides the distance-distribution resolution
	// (default: 100 bins, or one per integer distance for discrete
	// metrics).
	HistogramBins int
	// SamplePairs caps the object pairs sampled to estimate F
	// (default 200,000).
	SamplePairs int
	// Seed drives all sampling.
	Seed int64
	// Workers bounds the goroutines used to estimate F (0 =
	// runtime.NumCPU()). The estimate is bit-identical for any worker
	// count with the same Seed.
	Workers int
	// Storage selects the fault-tolerant paged storage stack; the zero
	// value keeps the fast in-memory node store.
	Storage StorageOptions
	// Arena freezes the built tree into the flat columnar node layout
	// for query serving (see ArenaOptions).
	Arena ArenaOptions
}

// ArenaOptions opts the built index into the arena read path: the tree
// is frozen into a flat columnar layout (routing radii, parent
// distances, child pointers, and objects in typed slabs) that queries
// traverse with batched distance kernels and zero per-query heap
// allocations. Results, traces, and cost counters are bit-identical to
// the store-backed traversal. Insert and Delete thaw the arena — the
// index transparently falls back to the store path until it is frozen
// again.
type ArenaOptions struct {
	// Enabled freezes the tree at Build. Ignored when fault injection
	// is configured (faults target the paged read path, which the
	// arena would bypass).
	Enabled bool
	// Mmap serves the frozen slabs from a memory-mapped file, so
	// concurrent shard goroutines share read-only pages without the
	// page-cache mutex. Vector, edit, and hamming spaces only.
	Mmap bool
	// Path is the slab file for Mmap (empty = a private unlinked temp
	// file). Sharded builds derive one file per shard from it.
	Path string
}

// Index is a built M-tree together with its fitted cost model.
type Index struct {
	space *Space
	// sample is one indexed object, kept as the reference shape for
	// query validation (dimension, bit-string length, object type).
	sample Object
	tree   *mtree.Tree
	stack *pager.Stack // non-nil only with StorageOptions enabled
	f     *histogram.Histogram
	stats *mtree.Stats
	model *core.MTreeModel
	// rc, when non-nil, keeps the model live under writes: F̂ updates on
	// every Insert/Delete, bias correction from recent traces, periodic
	// refits. Enabled by EnableRecalibration.
	rc *recal.Recalibrator
	// scan is the first-class linear-scan engine over the same objects
	// (write-through on Insert/Delete); profile is the dataset's
	// indexing-hardness profile; mode selects which engine the
	// priced/batched surface uses. See advise.go.
	scan    *mtree.Scan
	profile HardnessProfile
	mode    EngineMode
}

// Build indexes the objects and fits the cost model: it constructs the
// M-tree (bulk-loaded unless Incremental), estimates the distance
// distribution F̂ from sampled pairs, and collects the tree statistics
// the models need. The returned Index answers both real queries and
// cost predictions.
func Build(space *Space, objects []Object, opt Options) (*Index, error) {
	if space == nil {
		return nil, errors.New("mcost: nil space")
	}
	if len(objects) < 2 {
		return nil, fmt.Errorf("mcost: need at least 2 objects, got %d", len(objects))
	}
	mo, stack, err := buildStorage(space, objects[0], opt)
	if err != nil {
		return nil, err
	}
	tree, err := mtree.New(mo)
	if err != nil {
		return nil, err
	}
	if opt.Incremental {
		err = tree.InsertAll(objects)
	} else {
		err = tree.BulkLoad(objects)
	}
	if err != nil {
		return nil, err
	}
	ix, err := finishIndex(space, tree, objects, opt)
	if err != nil {
		return nil, err
	}
	ix.stack = stack
	if opt.Arena.Enabled && opt.Storage.Faults == nil {
		if err := tree.FreezeArena(mtree.ArenaConfig{Mmap: opt.Arena.Mmap, Path: opt.Arena.Path}); err != nil {
			return nil, fmt.Errorf("mcost: freezing arena: %w", err)
		}
	}
	return ix, nil
}

func finishIndex(space *Space, tree *mtree.Tree, objects []Object, opt Options) (*Index, error) {
	stats, err := tree.CollectStats()
	if err != nil {
		return nil, err
	}
	ds := &dataset.Dataset{Name: "indexed", Space: space, Objects: objects}
	f, err := distdist.Estimate(ds, distdist.Options{
		Bins:     opt.HistogramBins,
		MaxPairs: opt.SamplePairs,
		Seed:     opt.Seed + 1,
		Workers:  opt.Workers,
	})
	if err != nil {
		return nil, err
	}
	model, err := core.NewMTreeModel(f, stats)
	if err != nil {
		return nil, err
	}
	ix := &Index{space: space, sample: objects[0], tree: tree, f: f, stats: stats, model: model}
	if err := ix.buildPlanner(objects); err != nil {
		return nil, err
	}
	return ix, nil
}

// ErrInvalidQuery is returned (wrapped) by every query entry point when
// the query object cannot be compared by the index's space — wrong
// type, wrong vector dimension, non-finite coordinates, or a
// length-mismatched bit string. The check runs before any distance
// call, so a malformed query is a typed error, never a panic inside a
// distance function. Match with errors.Is.
var ErrInvalidQuery = metric.ErrInvalidQuery

func (ix *Index) validateQuery(q Object) error {
	return metric.ValidateQuery(ix.space, ix.sample, q)
}

func validateQueries(s *Space, sample Object, qs []Object) error {
	for i, q := range qs {
		if err := metric.ValidateQuery(s, sample, q); err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
	}
	return nil
}

// Size returns the number of indexed objects.
func (ix *Index) Size() int { return ix.tree.Size() }

// Height returns the number of tree levels.
func (ix *Index) Height() int { return ix.tree.Height() }

// NumNodes returns the number of tree nodes (pages).
func (ix *Index) NumNodes() int { return ix.tree.NumNodes() }

// Range returns all objects within radius of q. The parent-distance
// optimization is enabled: real queries should be as fast as possible.
func (ix *Index) Range(q Object, radius float64) ([]Match, error) {
	if err := ix.validateQuery(q); err != nil {
		return nil, err
	}
	return ix.tree.Range(q, radius, mtree.QueryOptions{UseParentDist: true})
}

// NN returns the k nearest neighbors of q, closest first.
func (ix *Index) NN(q Object, k int) ([]Match, error) {
	if err := ix.validateQuery(q); err != nil {
		return nil, err
	}
	return ix.tree.NN(q, k, mtree.QueryOptions{UseParentDist: true})
}

// Costs returns the node reads and distance computations accumulated
// since the last ResetCosts — the two cost dimensions of the paper.
func (ix *Index) Costs() (nodeReads, distances int64) {
	return ix.tree.NodeReads() + ix.scan.NodeReads(),
		ix.tree.DistanceCount() + ix.scan.DistanceCount()
}

// ResetCosts zeroes the cost counters (typically after Build, before a
// measured workload).
func (ix *Index) ResetCosts() {
	ix.tree.ResetCounters()
	ix.scan.ResetCounters()
}

// PredictRange predicts range-query costs with the node-based model
// N-MCM (Eq. 6-7 of the paper). The prediction models a search without
// the parent-distance optimization, so it upper-bounds what Range
// performs; see PredictRangeLevel for the cheaper level-based variant.
func (ix *Index) PredictRange(radius float64) CostEstimate {
	if ix.rc != nil {
		return ix.rc.CorrectTotal(ix.model.RangeN(radius))
	}
	return ix.model.RangeN(radius)
}

// PredictRangeLevel predicts range-query costs with the level-based
// model L-MCM (Eq. 15-16), which needs only per-level statistics. With
// recalibration enabled the per-level prediction is scaled by the bias
// factors learned from recent traces.
func (ix *Index) PredictRangeLevel(radius float64) CostEstimate {
	if ix.rc != nil {
		return ix.rc.CorrectRange(ix.model.RangeLByLevel(radius))
	}
	return ix.model.RangeL(radius)
}

// PredictSelectivity predicts the number of objects a range query
// returns: n·F(radius) (Eq. 8).
func (ix *Index) PredictSelectivity(radius float64) float64 {
	return ix.model.RangeObjects(radius)
}

// PredictNN predicts k-NN query costs with the node-based model by
// integrating range costs over the k-th-neighbor distance distribution
// (Eq. 9-14 generalized to any k). With recalibration enabled the
// aggregate bias learned from recent traces is applied.
func (ix *Index) PredictNN(k int) CostEstimate {
	if ix.rc != nil {
		return ix.rc.CorrectNN(ix.model.NNN(k))
	}
	return ix.model.NNN(k)
}

// PredictNNLevel is the level-based variant (Eq. 17-18).
func (ix *Index) PredictNNLevel(k int) CostEstimate {
	if ix.rc != nil {
		return ix.rc.CorrectNN(ix.model.NNL(k))
	}
	return ix.model.NNL(k)
}

// ExpectedNNDistance predicts the distance of the k-th nearest neighbor
// of a random query (Eq. 11).
func (ix *Index) ExpectedNNDistance(k int) float64 { return ix.model.ExpectedNNDist(k) }

// DistanceDistribution exposes the estimated F̂: F(x) is the fraction of
// object pairs within distance x.
func (ix *Index) DistanceDistribution() func(x float64) float64 {
	return ix.f.CDF
}

// PredictTotalMS combines a prediction into milliseconds under the disk
// parameters, using this index's node size.
func (ix *Index) PredictTotalMS(est CostEstimate, disk DiskParams) float64 {
	return disk.TotalMS(est, ix.tree.PageSize())
}

// PaperDiskParams returns the disk parameters of the paper's Figure
// 5(b): 10 ms positioning, 1 ms/KB transfer, 5 ms per distance.
func PaperDiskParams() DiskParams { return core.PaperDiskParams() }

// Delete removes an object by OID. The caller supplies the object value
// (the tree routes by distance, not by key). After heavy churn the cost
// model's statistics grow stale — covering radii are not tightened on
// deletion — so call RefreshModel before relying on predictions again,
// or enable recalibration and let the index refresh itself.
func (ix *Index) Delete(obj Object, oid uint64) error {
	if err := ix.tree.Delete(obj, oid); err != nil {
		return err
	}
	ix.scan.Remove(oid)
	if ix.rc != nil {
		ix.rc.ObserveDelete(obj)
		return ix.maybeRecalRefresh()
	}
	return nil
}

// RefreshModel re-collects the tree statistics and refits the cost
// model after structural churn (inserts/deletes since Build). The
// distance distribution F̂ is kept: deletions and inserts drawn from the
// same data distribution do not change it.
func (ix *Index) RefreshModel() error {
	stats, err := ix.tree.CollectStats()
	if err != nil {
		return err
	}
	model, err := core.NewMTreeModel(ix.f, stats)
	if err != nil {
		return err
	}
	ix.stats = stats
	ix.model = model
	ix.refreshProfile()
	return nil
}

// Insert adds one object after Build and returns its OID. Refresh the
// model after bulk churn, or enable recalibration and let the index
// refresh itself.
func (ix *Index) Insert(obj Object) (uint64, error) {
	oid := ix.tree.NextOID()
	if err := ix.tree.Insert(obj); err != nil {
		return 0, err
	}
	ix.scan.Insert(obj, oid)
	if ix.rc != nil {
		ix.rc.ObserveInsert(obj)
		if err := ix.maybeRecalRefresh(); err != nil {
			return oid, err
		}
	}
	return oid, nil
}

// EnableRecalibration attaches a live recalibrator: every subsequent
// Insert/Delete updates F̂ via reservoir-sampled distances, traced batch
// executions feed the per-level bias window, Price*/Predict* return
// bias-corrected estimates, and the model is refit from the blended F̂
// plus fresh tree statistics every cfg.RefreshEvery writes. sample
// primes the distance-sampling reservoir with live objects — pass the
// build dataset (or any subset); an empty sample fills from inserts.
//
// The index is not safe for writes concurrent with reads; the serving
// layer serializes writes behind an RWMutex. The recalibrator itself is
// concurrency-safe.
func (ix *Index) EnableRecalibration(cfg recal.Config, sample []Object) error {
	rc, err := recal.New(cfg, ix.f, ix.space, ix.tree.Size(), sample)
	if err != nil {
		return err
	}
	ix.rc = rc
	return nil
}

// RecalStats snapshots the recalibrator's observable state; ok is false
// when recalibration is not enabled.
func (ix *Index) RecalStats() (recal.Stats, bool) {
	if ix.rc == nil {
		return recal.Stats{}, false
	}
	return ix.rc.Stats(), true
}

// maybeRecalRefresh refits the model from the recalibrator's blended F̂
// and fresh tree statistics when enough writes have accumulated.
func (ix *Index) maybeRecalRefresh() error {
	if !ix.rc.NeedRefresh() {
		return nil
	}
	stats, err := ix.tree.CollectStats()
	if err != nil {
		return fmt.Errorf("mcost: recalibration refresh: %w", err)
	}
	f, err := ix.rc.Histogram()
	if err != nil {
		return fmt.Errorf("mcost: recalibration refresh: %w", err)
	}
	model, err := core.NewMTreeModel(f, stats)
	if err != nil {
		return fmt.Errorf("mcost: recalibration refresh: %w", err)
	}
	ix.f = f
	ix.stats = stats
	ix.model = model
	ix.rc.MarkRefreshed()
	ix.refreshProfile()
	return nil
}

// Model is a standalone fitted cost model: the JSON-serializable object
// a query optimizer keeps in its catalog, predicting costs with no
// access to the index or the data.
type Model = core.MTreeModel

// SaveModel writes the index's fitted cost model as JSON.
func (ix *Index) SaveModel(w io.Writer) error { return ix.model.Save(w) }

// LoadModel reads a model written by SaveModel.
func LoadModel(r io.Reader) (*Model, error) { return core.LoadModel(r) }

// HVResult reports a homogeneity-of-viewpoints estimate.
type HVResult = distdist.HVResult

// HV estimates the homogeneity-of-viewpoints index (Definition 2) of the
// space underlying the objects: values near 1 (the paper reports > 0.98
// for all its datasets) mean the cost model's Assumption 1 holds and
// predictions are trustworthy; low values call for the multi-viewpoint
// extension.
func HV(space *Space, objects []Object, seed int64) (*HVResult, error) {
	ds := &dataset.Dataset{Name: "hv", Space: space, Objects: objects}
	return distdist.HV(ds, distdist.HVOptions{Seed: seed})
}

// TuneNodeSize builds one index per candidate node size and returns the
// size minimizing the predicted combined cost for range queries of the
// given radius under the disk parameters (Section 4.1). It returns the
// chosen size in bytes and the per-candidate predictions.
func TuneNodeSize(space *Space, objects []Object, sizes []int, radius float64, disk DiskParams, opt Options) (int, []core.TuningPoint, error) {
	if len(sizes) == 0 {
		return 0, nil, errors.New("mcost: no candidate node sizes")
	}
	points := make([]core.TuningPoint, 0, len(sizes))
	for _, ns := range sizes {
		o := opt
		o.PageSize = ns
		ix, err := Build(space, objects, o)
		if err != nil {
			return 0, nil, fmt.Errorf("mcost: node size %d: %w", ns, err)
		}
		est := ix.PredictRange(radius)
		points = append(points, core.TuningPoint{
			NodeSize: ns,
			Est:      est,
			TotalMS:  disk.TotalMS(est, ns),
		})
	}
	best, err := core.BestNodeSize(points)
	if err != nil {
		return 0, nil, err
	}
	return best.NodeSize, points, nil
}

// NNApprox returns approximately the k nearest neighbors: the best-first
// search stops at the confidence-quantile of the k-NN distance predicted
// by the cost model (Eq. 9), so with probability >= confidence the true
// k-th neighbor lies within the searched region. Lower confidence means
// fewer node reads and distance computations; confidence >= 1 degrades
// to the exact NN. This is the probably-approximately-correct use of the
// model the paper's optimizer framing invites.
func (ix *Index) NNApprox(q Object, k int, confidence float64) ([]Match, error) {
	if err := ix.validateQuery(q); err != nil {
		return nil, err
	}
	stop := ix.model.NNDistQuantile(k, confidence)
	return ix.tree.NNWithStop(q, k, stop, mtree.QueryOptions{UseParentDist: true})
}

// IndexStats summarizes the built tree for observability and reporting.
type IndexStats struct {
	// Objects is the number of indexed objects.
	Objects int
	// Nodes is the number of pages; Height the number of levels.
	Nodes  int
	Height int
	// LeafNodes and AvgLeafEntries describe the leaf level.
	LeafNodes      int
	AvgLeafEntries float64
	// AvgLeafRadius and MaxLeafRadius describe leaf region sizes, the
	// quantities the cost model derives access probabilities from.
	AvgLeafRadius float64
	MaxLeafRadius float64
	// LevelNodes lists the node count per level, root first.
	LevelNodes []int
}

// Stats reports the tree's structural statistics (from the snapshot
// taken at Build or the last RefreshModel).
func (ix *Index) Stats() IndexStats {
	out := IndexStats{
		Objects: ix.stats.Size,
		Height:  ix.stats.Height,
	}
	for _, ls := range ix.stats.Levels {
		out.LevelNodes = append(out.LevelNodes, ls.Nodes)
		out.Nodes += ls.Nodes
	}
	var leafEntries int
	for _, ns := range ix.stats.Nodes {
		if !ns.Leaf {
			continue
		}
		out.LeafNodes++
		leafEntries += ns.Entries
		out.AvgLeafRadius += ns.Radius
		if ns.Radius > out.MaxLeafRadius {
			out.MaxLeafRadius = ns.Radius
		}
	}
	if out.LeafNodes > 0 {
		out.AvgLeafEntries = float64(leafEntries) / float64(out.LeafNodes)
		out.AvgLeafRadius /= float64(out.LeafNodes)
	}
	return out
}
