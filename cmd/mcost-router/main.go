// Command mcost-router fronts N mcost-serve shard nodes as one
// cost-routed scatter-gather endpoint. At boot it fetches each shard's
// F̂/L-MCM model summary from GET /v1/model and reconstructs the
// per-shard predictors locally; from then on every query is priced per
// shard before any network call. Predictions drive the routing: shards
// whose pivot lower bound proves them irrelevant are never contacted,
// per-shard timeouts scale with predicted cost, and cheap shard calls
// hedge to a replica while expensive ones never duplicate work.
// Failures degrade instead of cascading — retries with capped jittered
// backoff, per-endpoint circuit breakers fed by a /healthz polling
// loop, and typed partial responses ("degraded": true, shards_failed)
// when a shard stays down.
//
// Usage:
//
//	mcost-router -addr :8090 http://127.0.0.1:8081 http://127.0.0.1:8082 http://127.0.0.1:8083
//	mcost-router -hedge-max-nodes 50 http://a:8081,http://a2:8081 http://b:8082
//
// Each positional argument lists one shard's endpoints, comma-separated
// with the primary first; shard order must match the nodes'
// -shard-index order. Endpoints: POST /v1/range, POST /v1/nn, GET
// /v1/stats (router.* counters and per-shard latency histograms), GET
// /healthz (per-endpoint breaker states).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mcost/internal/router"
)

func main() {
	var (
		addr = flag.String("addr", ":8090", "listen address")

		slack       = flag.Float64("timeout-slack", router.DefaultSlackFactor, "scale each shard's predicted cost into its timeout by this factor")
		minTimeout  = flag.Duration("min-shard-timeout", router.DefaultMinShardTimeout, "floor for the cost-seeded per-shard timeout")
		maxTimeout  = flag.Duration("max-shard-timeout", router.DefaultMaxShardTimeout, "ceiling for the cost-seeded per-shard timeout")
		hedgeNodes  = flag.Float64("hedge-max-nodes", 0, "hedge a shard call to a replica when its predicted node reads are at or below this (0 = hedging off)")
		hedgeDelay  = flag.Duration("hedge-delay", 0, "how long the primary runs alone before the hedge fires (0 = a quarter of the shard timeout)")
		retries     = flag.Int("retries", router.DefaultMaxRetries, "retries per shard call after the first attempt (-1 = none)")
		retryBase   = flag.Duration("retry-base", router.DefaultRetryBase, "base backoff between retries (doubles per attempt, plus jitter)")
		retryMax    = flag.Duration("retry-max", router.DefaultRetryMax, "backoff ceiling")
		brkFails    = flag.Int("breaker-fails", router.DefaultBreakerFails, "consecutive failures that open an endpoint's circuit breaker")
		brkCooldown = flag.Duration("breaker-cooldown", router.DefaultBreakerCooldown, "how long an open breaker blocks traffic before a half-open probe")
		healthEvery = flag.Duration("health-interval", router.DefaultHealthInterval, "cadence of the /healthz polling loop over every endpoint (negative = off)")
		planCeiling = flag.Float64("plan-ceiling", 0, "reject a query when even its cheapest per-shard plan (tree share or linear scan, whichever is cheaper, summed over shards) prices above this many node reads + distance computations (typed 422 plan_rejected; 0 = no ceiling)")
		modelWait   = flag.Duration("model-wait", 30*time.Second, "keep retrying the boot-time /v1/model fetches this long while nodes build")
		seed        = flag.Int64("seed", 0, "retry-jitter seed (0 = from the clock)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fail(fmt.Errorf("no shard endpoints given; pass one argument per shard, comma-separated replicas"))
	}

	shards := make([][]string, flag.NArg())
	for i, arg := range flag.Args() {
		for _, ep := range strings.Split(arg, ",") {
			ep = strings.TrimSuffix(strings.TrimSpace(ep), "/")
			if ep == "" {
				continue
			}
			if !strings.Contains(ep, "://") {
				ep = "http://" + ep
			}
			shards[i] = append(shards[i], ep)
		}
		if len(shards[i]) == 0 {
			fail(fmt.Errorf("shard %d has no endpoints", i))
		}
	}

	cfg := router.Config{
		Shards:          shards,
		SlackFactor:     *slack,
		MinShardTimeout: *minTimeout,
		MaxShardTimeout: *maxTimeout,
		HedgeMaxNodes:   *hedgeNodes,
		HedgeDelay:      *hedgeDelay,
		MaxRetries:      *retries,
		RetryBase:       *retryBase,
		RetryMax:        *retryMax,
		BreakerFails:    *brkFails,
		BreakerCooldown: *brkCooldown,
		HealthInterval:  *healthEvery,
		PlanCeiling:     *planCeiling,
		Seed:            *seed,
	}
	if *retries <= 0 {
		cfg.MaxRetries = -1 // Config: negative disables retries (0 would mean "default")
	}

	// Nodes listen before they finish building (503 "building"), so the
	// boot-time model fetch polls until every shard's summary is up.
	fmt.Printf("fetching shard models from %d shard(s)...\n", len(shards))
	var rt *router.Router
	var err error
	deadline := time.Now().Add(*modelWait)
	for {
		rt, err = router.New(context.Background(), cfg)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			fail(err)
		}
		time.Sleep(500 * time.Millisecond)
	}
	defer rt.Close()
	fmt.Printf("router: %d shards, %d objects total\n", rt.Shards(), rt.Size())

	httpSrv := &http.Server{Addr: *addr, Handler: rt.Handler()}
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()
	fmt.Printf("routing on %s (hedge <= %g predicted nodes, %d retries, breaker opens at %d fails)\n",
		*addr, *hedgeNodes, cfg.MaxRetries, *brkFails)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		fail(err)
	case s := <-sig:
		fmt.Printf("\n%v: draining...\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "mcost-router: shutdown:", err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mcost-router:", err)
	os.Exit(1)
}
