// Command mcost-query builds an M-tree over a generated or loaded
// dataset, runs a similarity query, and prints the results alongside the
// cost model's predictions and the actually measured costs — a direct
// demonstration of the paper's claim that costs are predictable from the
// distance distribution alone.
//
// Usage:
//
//	mcost-query -dataset words -n 10000 -query tempesta -nn 10
//	mcost-query -dataset clustered -dim 10 -qvec 0.5,0.5,... -range 0.2
//	mcost-query -file vocab.ds -query castello -range 3
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"net/http"
	_ "net/http/pprof" // -debug-addr serves the default mux
	"os"
	"strconv"
	"strings"
	"time"

	"mcost"
	"mcost/internal/cliutil"
	"mcost/internal/dataset"
	"mcost/internal/metric"
	"mcost/internal/obs"
	"mcost/internal/rescache"
)

func main() {
	fs := flag.CommandLine
	var (
		df  = cliutil.RegisterDataset(fs, "words", 10_000, 10)
		tf  = cliutil.RegisterTree(fs, 1)
		shf = cliutil.RegisterShards(fs, 1, "pivot", 1)
		stf = cliutil.RegisterStorage(fs)
		bf  = cliutil.RegisterBudget(fs, true)
		cf  = cliutil.RegisterCache(fs, 0)
		rf  = cliutil.RegisterRecal(fs)
		ef  = cliutil.RegisterEngine(fs, "tree")

		queryStr = flag.String("query", "", "query word (string datasets)")
		queryVec = flag.String("qvec", "", "query vector, comma-separated (vector datasets)")
		radius   = flag.Float64("range", -1, "range query radius")
		k        = flag.Int("nn", 0, "k for a k-NN query")
		show     = flag.Int("show", 10, "max results to print")
		explain  = flag.Bool("explain", false, "print a per-level prediction-vs-measurement breakdown (range queries)")
		trace    = flag.Bool("trace", false, "print the query's per-level trace (node visits, distance computations, pruning by lemma) as JSON")
		mOut     = flag.String("metrics-out", "", "write the process metrics snapshot and query trace as JSON to FILE")
		dbgAddr  = flag.String("debug-addr", "", "serve net/http/pprof and expvar (including the metrics registry at /debug/vars) on this address, e.g. localhost:6060; blocks after the query so the endpoint stays up")
	)
	flag.Parse()

	if err := tf.ValidateLayout(); err != nil {
		fail(err)
	}
	storage := stf.Options(nil)
	budgetSlack, timeout := &bf.Slack, &bf.Timeout

	reg := mcost.NewMetricsRegistry()
	if *dbgAddr != "" {
		reg.PublishExpvar("mcost")
		go func() {
			if err := http.ListenAndServe(*dbgAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "mcost-query: debug server:", err)
			}
		}()
		fmt.Printf("debug server on http://%s/debug/pprof/ and /debug/vars\n", *dbgAddr)
	}

	d, err := df.Load(tf.Seed)
	if err != nil {
		fail(err)
	}
	q, err := parseQuery(d, *queryStr, *queryVec)
	if err != nil {
		fail(err)
	}
	if *radius < 0 && *k <= 0 {
		fail(fmt.Errorf("specify -range R or -nn K"))
	}
	if shf.Shards > 1 || shf.Batch > 1 {
		if *explain || *trace || *mOut != "" {
			fail(fmt.Errorf("-explain, -trace and -metrics-out require the single-tree, single-query path (drop -shards/-batch)"))
		}
		runSharded(d, q, shardedRun{
			shards: shf.Shards, assign: shf.Assign, batch: shf.Batch,
			pageSize: tf.PageSize, seed: tf.Seed, workers: tf.Workers,
			storage: storage, radius: *radius, k: *k, show: *show,
			budgetSlack: *budgetSlack, timeout: *timeout, recal: rf,
		})
		return
	}

	fmt.Printf("building M-tree over %s (n=%d, node size %d B)...\n", d.Name, d.N(), tf.PageSize)
	storage.Metrics = reg
	ix, err := mcost.Build(d.Space, d.Objects, tf.Options(storage))
	if err != nil {
		fail(err)
	}
	fmt.Printf("tree: %d nodes, height %d", ix.NumNodes(), ix.Height())
	if storage.Paged {
		fmt.Printf(" (paged, checksummed%s)", map[bool]string{true: ", fault injection armed", false: ""}[storage.Faults != nil])
	}
	fmt.Printf("\n\n")
	if storage.Faults != nil {
		ix.SetFaultsEnabled(true) // build is clean; faults target the query phase
	}
	if err := rf.Apply(ix, nil, d, tf.Seed); err != nil {
		fail(err)
	}
	if err := ef.Apply(ix, nil); err != nil {
		fail(err)
	}
	if ix.EngineMode() != mcost.EngineTree {
		if *explain {
			fail(fmt.Errorf("-explain walks the M-tree; drop -engine %s", ef.Mode))
		}
		runEngineMode(ix, q, *radius, *k, *show, bf.Slack, bf.Timeout, *trace)
		return
	}

	if *explain && *radius >= 0 {
		matches, levels, err := ix.ExplainRange(q, *radius)
		if err != nil {
			fail(err)
		}
		fmt.Printf("explain range(Q, %g) — L-MCM prediction vs measurement (no pruning):\n", *radius)
		fmt.Printf("%6s %22s %22s\n", "level", "pred nodes/dists", "actual nodes/dists")
		for _, l := range levels {
			fmt.Printf("%6d %10.1f / %-10.1f %10d / %-10d\n",
				l.Level, l.PredNodes, l.PredDists, l.ActNodes, l.ActDists)
		}
		fmt.Printf("\n%d results\n", len(matches))
		return
	}

	var qtr *mcost.QueryTrace
	guarded := *budgetSlack > 0 || *timeout > 0
	if !guarded && (*trace || *mOut != "" || *dbgAddr != "") {
		qtr = mcost.NewQueryTrace()
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var matches []mcost.Match
	var predicted mcost.CostEstimate
	if *radius >= 0 {
		predicted = ix.PredictRange(*radius)
		fmt.Printf("range(Q, %g): predicted %.1f node reads, %.1f distance computations, ~%.1f results\n",
			*radius, predicted.Nodes, predicted.Dists, ix.PredictSelectivity(*radius))
		ix.ResetCosts()
		switch {
		case *budgetSlack > 0:
			b := ix.RangeBudget(*radius, *budgetSlack)
			fmt.Printf("budget: %d node reads, %d distance computations (L-MCM x %.1f)\n",
				b.MaxNodeReads, b.MaxDistCalcs, *budgetSlack)
			matches, err = ix.RangeCtx(ctx, q, *radius, b)
		case guarded:
			matches, err = ix.RangeCtx(ctx, q, *radius, mcost.QueryBudget{})
		default:
			matches, err = ix.RangeTraced(q, *radius, qtr)
		}
	} else {
		predicted = ix.PredictNN(*k)
		fmt.Printf("NN(Q, %d): predicted %.1f node reads, %.1f distance computations, E[nn_k] = %.3f\n",
			*k, predicted.Nodes, predicted.Dists, ix.ExpectedNNDistance(*k))
		ix.ResetCosts()
		switch {
		case *budgetSlack > 0:
			b := ix.NNBudget(*k, *budgetSlack)
			fmt.Printf("budget: %d node reads, %d distance computations (L-MCM x %.1f)\n",
				b.MaxNodeReads, b.MaxDistCalcs, *budgetSlack)
			matches, err = ix.NNCtx(ctx, q, *k, b)
		case guarded:
			matches, err = ix.NNCtx(ctx, q, *k, mcost.QueryBudget{})
		default:
			matches, err = ix.NNTraced(q, *k, qtr)
		}
	}
	switch {
	case err == nil:
	case errors.Is(err, mcost.ErrBudgetExceeded),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		fmt.Printf("DEGRADED: %v — returning the partial result set\n", err)
	default:
		fail(err)
	}
	nodes, dists := ix.Costs()
	fmt.Printf("measured: %d node reads, %d distance computations (parent-distance pruning ON)\n", nodes, dists)
	if storage.Faults != nil {
		fs := ix.FaultStats()
		fmt.Printf("faults injected: %d read errors, %d write errors, %d torn writes, %d corrupt reads\n",
			fs.ReadErrors, fs.WriteErrors, fs.TornWrites, fs.CorruptReads)
	}
	if cf.Enabled() && err == nil {
		// Demonstrate the result cache on the query just answered: cache
		// the complete result, then probe for the same query and report
		// what a repeat would cost instead of the predicted traversal.
		cache, cerr := cf.Build(d.Space)
		if cerr != nil {
			fail(cerr)
		}
		var pr rescache.Probe
		if *radius >= 0 {
			cache.PutRange(q, *radius, matches, predicted)
			pr = cache.GetRange(q, *radius, predicted)
		} else {
			cache.PutNN(q, *k, matches, predicted)
			pr = cache.GetNN(q, *k, predicted)
		}
		if pr.Hit {
			fmt.Printf("result cache: a repeat query is answered exactly for %d distance computations (vs %.1f node reads + %.1f dists predicted)\n",
				pr.Dists, predicted.Nodes, predicted.Dists)
		} else {
			fmt.Printf("result cache: result not cacheable under the current flags (radius cap or zero-radius ball)\n")
		}
	}
	fmt.Println()

	if qtr != nil {
		recordMetrics(reg, qtr, matches, d.Space.Bound)
	}
	if *trace {
		out, err := json.MarshalIndent(qtr, "", "  ")
		if err != nil {
			fail(err)
		}
		fmt.Printf("query trace:\n%s\n\n", out)
	}
	if *mOut != "" {
		if err := writeMetrics(*mOut, reg, qtr); err != nil {
			fail(err)
		}
		fmt.Printf("wrote metrics snapshot to %s\n", *mOut)
	}

	fmt.Printf("%d results", len(matches))
	if len(matches) > *show {
		fmt.Printf(" (showing %d)", *show)
	}
	fmt.Println(":")
	for i, m := range matches {
		if i >= *show {
			break
		}
		fmt.Printf("  %2d. d=%-8.3f %v\n", i+1, m.Distance, m.Object)
	}

	if *dbgAddr != "" {
		fmt.Printf("\nquery done; debug server still serving on http://%s — Ctrl-C to exit\n", *dbgAddr)
		select {}
	}
}

// runEngineMode answers the query through the mode-aware priced surface
// — the same path the serving layer executes — so -engine scan runs the
// linear scan and -engine auto runs whichever engine the advisor plans.
// Results are bit-identical to running the chosen engine directly.
func runEngineMode(ix *mcost.Index, q mcost.Object, radius float64, k int, show int, slack float64, timeout time.Duration, trace bool) {
	hard := ix.Hardness()
	fmt.Printf("hardness: intrinsic dim %.2f, concentration %.4f, crossover radius %g, crossover k %d\n",
		hard.Hardness(), hard.Concentration, hard.CrossoverRadius, hard.CrossoverK)
	var (
		d    mcost.PlanDecision
		perr error
		pred mcost.CostEstimate
	)
	if radius >= 0 {
		d, perr = ix.PlanRange(radius)
		pred = ix.PriceRange(radius)
	} else {
		d, perr = ix.PlanNN(k)
		pred = ix.PriceNN(k)
	}
	if perr != nil {
		fail(perr)
	}
	fmt.Printf("plan: %s\n", d.Reason)
	fmt.Printf("engine mode %s: priced at %.1f node reads, %.1f distance computations\n",
		ix.EngineMode(), pred.Nodes, pred.Dists)

	var qb mcost.QueryBudget
	if slack > 0 {
		qb = mcost.QueryBudget{
			MaxNodeReads: int64(math.Ceil(pred.Nodes * slack)),
			MaxDistCalcs: int64(math.Ceil(pred.Dists * slack)),
		}
		fmt.Printf("budget: %d node reads, %d distance computations (prediction x %.1f)\n",
			qb.MaxNodeReads, qb.MaxDistCalcs, slack)
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var qtr *mcost.QueryTrace
	if trace {
		qtr = mcost.NewQueryTrace()
	}

	ix.ResetCosts()
	var (
		sets [][]mcost.Match
		err  error
	)
	if radius >= 0 {
		sets, err = ix.RangeBatchTraced(ctx, []mcost.Object{q}, radius, qb, qtr)
	} else {
		sets, err = ix.NNBatchTraced(ctx, []mcost.Object{q}, k, qb, qtr)
	}
	switch {
	case err == nil:
	case errors.Is(err, mcost.ErrBudgetExceeded),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		fmt.Printf("DEGRADED: %v — returning the partial result set\n", err)
	default:
		fail(err)
	}
	nodes, dists := ix.Costs()
	fmt.Printf("measured: %d node reads, %d distance computations\n\n", nodes, dists)
	if trace {
		out, jerr := json.MarshalIndent(qtr, "", "  ")
		if jerr != nil {
			fail(jerr)
		}
		fmt.Printf("query trace:\n%s\n\n", out)
	}

	var matches []mcost.Match
	if len(sets) > 0 {
		matches = sets[0]
	}
	fmt.Printf("%d results", len(matches))
	if len(matches) > show {
		fmt.Printf(" (showing %d)", show)
	}
	fmt.Println(":")
	for i, m := range matches {
		if i >= show {
			break
		}
		fmt.Printf("  %2d. d=%-8.3f %v\n", i+1, m.Distance, m.Object)
	}
}

// shardedRun carries the flag values for the sharded / batched path.
type shardedRun struct {
	shards, batch int
	assign        string
	pageSize      int
	seed          int64
	workers       int
	storage       mcost.StorageOptions
	radius        float64
	k             int
	show          int
	budgetSlack   float64
	timeout       time.Duration
	recal         *cliutil.RecalFlags
}

// runSharded answers the query through a ShardedIndex (or a 1-shard one
// when only -batch is set), padding the batch with dataset objects so
// the batched traversal has company to amortize node reads against. The
// primary query is always queries[0]; only its results are printed.
func runSharded(d *dataset.Dataset, q metric.Object, r shardedRun) {
	assign, err := mcost.ParseShardAssignment(r.assign)
	if err != nil {
		fail(err)
	}
	nShards := r.shards
	if nShards < 1 {
		nShards = 1
	}
	fmt.Printf("building %d-shard M-tree (%s assignment) over %s (n=%d, node size %d B)...\n",
		nShards, assign, d.Name, d.N(), r.pageSize)
	sx, err := mcost.BuildSharded(d.Space, d.Objects, mcost.Options{
		PageSize: r.pageSize, Seed: r.seed, Workers: r.workers, Storage: r.storage,
	}, mcost.ShardOptions{Shards: nShards, Assign: assign})
	if err != nil {
		fail(err)
	}
	fmt.Printf("shards: %v objects, %d nodes total, height %d\n\n",
		sx.ShardSizes(), sx.NumNodes(), sx.Height())
	if r.storage.Faults != nil {
		sx.SetFaultsEnabled(true) // build is clean; faults target the query phase
	}
	if err := r.recal.Apply(nil, sx, d, r.seed); err != nil {
		fail(err)
	}

	queries := []mcost.Object{q}
	for i := 0; i < r.batch-1 && i < len(d.Objects); i++ {
		queries = append(queries, d.Objects[i])
	}

	var pred mcost.CostEstimate
	if r.radius >= 0 {
		pred = sx.PredictRange(r.radius)
		fmt.Printf("range(Q, %g) x %d queries: predicted %.1f node reads, %.1f distance computations per query\n",
			r.radius, len(queries), pred.Nodes, pred.Dists)
	} else {
		pred = sx.PredictNN(r.k)
		fmt.Printf("NN(Q, %d) x %d queries: predicted %.1f node reads, %.1f distance computations per query (upper bound: shard pruning only reduces it)\n",
			r.k, len(queries), pred.Nodes, pred.Dists)
	}

	var qb mcost.QueryBudget
	if r.budgetSlack > 0 {
		qb = mcost.QueryBudget{
			MaxNodeReads: int64(math.Ceil(pred.Nodes * r.budgetSlack)),
			MaxDistCalcs: int64(math.Ceil(pred.Dists * r.budgetSlack)),
		}
		fmt.Printf("budget per shard traversal: %d node reads, %d distance computations (L-MCM x %.1f)\n",
			qb.MaxNodeReads, qb.MaxDistCalcs, r.budgetSlack)
	}
	ctx := context.Background()
	if r.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.timeout)
		defer cancel()
	}

	sx.ResetCosts()
	var sets [][]mcost.Match
	if r.radius >= 0 {
		sets, err = sx.RangeBatchCtx(ctx, queries, r.radius, qb)
	} else {
		sets, err = sx.NNBatchCtx(ctx, queries, r.k, qb)
	}
	switch {
	case err == nil:
	case errors.Is(err, mcost.ErrBudgetExceeded),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		fmt.Printf("DEGRADED: %v — returning the partial result sets\n", err)
	default:
		fail(err)
	}
	nodes, dists := sx.Costs()
	nq := float64(len(queries))
	fmt.Printf("measured: %.1f node reads, %.1f distance computations per query (%d / %d amortized over the batch), %d shard visits pruned\n",
		float64(nodes)/nq, float64(dists)/nq, nodes, dists, sx.ShardsSkipped())
	if r.storage.Faults != nil {
		sx.SetFaultsEnabled(false)
	}
	fmt.Println()

	var matches []mcost.Match
	if len(sets) > 0 {
		matches = sets[0]
	}
	fmt.Printf("%d results", len(matches))
	if len(matches) > r.show {
		fmt.Printf(" (showing %d)", r.show)
	}
	fmt.Println(":")
	for i, m := range matches {
		if i >= r.show {
			break
		}
		fmt.Printf("  %2d. d=%-8.3f %v\n", i+1, m.Distance, m.Object)
	}
}

// recordMetrics mirrors the query trace into the process metrics
// registry: total counters plus a result-distance histogram over the
// space's distance bound.
func recordMetrics(reg *mcost.MetricsRegistry, tr *mcost.QueryTrace, matches []mcost.Match, bound float64) {
	reg.Counter("query.count").Inc()
	reg.Counter("query.node_reads").Add(tr.TotalNodes())
	reg.Counter("query.dists").Add(tr.TotalDists())
	reg.Counter("query.results").Add(int64(len(matches)))
	h := reg.Hist("query.result_dist", 32, 0, bound)
	for _, m := range matches {
		h.Observe(m.Distance)
	}
}

// writeMetrics writes the registry snapshot together with the raw query
// trace as one canonical obs envelope — the same encoder behind
// mcost-exp's machine-readable output and mcost-serve's /v1/stats.
func writeMetrics(path string, reg *mcost.MetricsRegistry, tr *mcost.QueryTrace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = obs.WriteEnvelope(f, reg, tr)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func parseQuery(d *dataset.Dataset, queryStr, queryVec string) (metric.Object, error) {
	switch d.Objects[0].(type) {
	case string:
		if queryStr == "" {
			return nil, fmt.Errorf("string dataset: pass -query WORD")
		}
		return queryStr, nil
	case metric.Vector:
		dim := len(d.Objects[0].(metric.Vector))
		if queryVec == "" {
			// Default: the hypercube center.
			v := make(metric.Vector, dim)
			for i := range v {
				v[i] = 0.5
			}
			return v, nil
		}
		parts := strings.Split(queryVec, ",")
		if len(parts) != dim {
			return nil, fmt.Errorf("query vector has %d coordinates, dataset is %d-dimensional", len(parts), dim)
		}
		v := make(metric.Vector, dim)
		for i, p := range parts {
			x, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("coordinate %d: %w", i, err)
			}
			v[i] = x
		}
		return v, nil
	default:
		return nil, fmt.Errorf("unsupported object type %T", d.Objects[0])
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mcost-query:", err)
	os.Exit(1)
}
