// Command mcost-dataset generates the paper's dataset families and
// writes them in the library's text format, for use with the -file flag
// of mcost-hv and mcost-query (or any external tool — the format is one
// object per line).
//
// Usage:
//
//	mcost-dataset -dataset clustered -n 10000 -dim 20 -out clustered.ds
//	mcost-dataset -dataset words -n 12000 -out vocab.ds
//	mcost-dataset -dataset text -code DC -out commedia.ds   # Table 1 stand-in
//	mcost-dataset -stats -file vocab.ds                     # summarize an existing file
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"mcost/internal/dataset"
	"mcost/internal/distdist"
)

func main() {
	var (
		kind  = flag.String("dataset", "clustered", "clustered | uniform | words | text")
		code  = flag.String("code", "D", "text dataset code: D | DC | GL | OF | PS")
		n     = flag.Int("n", 10_000, "dataset size (ignored for -dataset text)")
		dim   = flag.Int("dim", 20, "dimensionality (vector datasets)")
		seed  = flag.Int64("seed", 1, "random seed")
		out   = flag.String("out", "", "output path (required unless -stats)")
		file  = flag.String("file", "", "with -stats: existing dataset to summarize")
		stats = flag.Bool("stats", false, "print distance-distribution statistics instead of generating")
	)
	flag.Parse()

	if *stats {
		path := *file
		if path == "" {
			path = *out
		}
		if path == "" {
			fail(fmt.Errorf("-stats needs -file"))
		}
		d, err := dataset.LoadFile(path)
		if err != nil {
			fail(err)
		}
		printStats(d)
		return
	}

	var d *dataset.Dataset
	switch *kind {
	case "clustered":
		d = dataset.PaperClustered(*n, *dim, *seed)
	case "uniform":
		d = dataset.Uniform(*n, *dim, *seed)
	case "words":
		d = dataset.Words(*n, *seed)
	case "text":
		found := false
		for _, td := range dataset.PaperTextDatasets() {
			if td.Code == *code {
				d = td.Build()
				found = true
				break
			}
		}
		if !found {
			fail(fmt.Errorf("unknown text code %q (want D, DC, GL, OF, PS)", *code))
		}
	default:
		fail(fmt.Errorf("unknown dataset kind %q", *kind))
	}
	if *out == "" {
		fail(fmt.Errorf("-out is required"))
	}
	if err := dataset.SaveFile(*out, d); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s: %d objects, metric %s, d+ = %g\n", *out, d.N(), d.Space.Name, d.Space.Bound)
}

func printStats(d *dataset.Dataset) {
	f, err := distdist.Estimate(d, distdist.Options{Seed: 1})
	if err != nil {
		fail(err)
	}
	fmt.Printf("dataset    %s\n", d.Name)
	fmt.Printf("objects    %d\n", d.N())
	fmt.Printf("metric     %s (d+ = %g)\n", d.Space.Name, d.Space.Bound)
	fmt.Printf("mean dist  %.4f\n", f.Mean())
	for _, p := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		fmt.Printf("F^-1(%.2f)  %.4f\n", p, f.Quantile(p))
	}
	fmt.Printf("std dist   %.4f\n", f.Std())
	if mean := f.Mean(); mean > 0 {
		fmt.Printf("sigma/mu   %.4f\n", f.Std()/mean)
	}
	// A degenerate histogram (point-mass distances) has no correlation
	// dimension; say so instead of silently dropping the line, and
	// surface real estimation failures rather than swallowing them.
	switch d2, err := distdist.CorrelationDimension(f, 0, 0); {
	case err == nil:
		fmt.Printf("corr dim   %.2f\n", d2)
	case errors.Is(err, distdist.ErrDegenerate):
		fmt.Printf("corr dim   n/a (%v)\n", err)
	default:
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mcost-dataset:", err)
	os.Exit(1)
}
