// Command mcost-exp regenerates the paper's tables and figures.
//
// Usage:
//
//	mcost-exp -exp all                         # every experiment, default scale
//	mcost-exp -exp fig1 -n 10000 -queries 1000 # Figure 1 at the paper's scale
//	mcost-exp -exp fig5 -n 100000              # node-size tuning, larger dataset
//	mcost-exp -exp residuals -metrics-out r.json -trace  # per-level residual JSON
//	mcost-exp -list                            # list experiment names
//
// Experiments (see DESIGN.md for the experiment index): table1, hv,
// fig1, fig2, fig3, fig4, fig5, vptree, ablation-pruning, ablation-bins,
// ablation-sampling, ablation-build.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mcost/internal/cliutil"
	"mcost/internal/experiments"
)

func main() {
	fs := flag.CommandLine
	var (
		tf  = cliutil.RegisterTree(fs, 42)
		shf = cliutil.RegisterShards(fs, 0, "", 0)
		stf = cliutil.RegisterStorage(fs)
		bf  = cliutil.RegisterBudget(fs, false)
		cf  = cliutil.RegisterCache(fs, 0)
		rf  = cliutil.RegisterRecal(fs)

		exp     = flag.String("exp", "all", "experiment name or 'all'")
		n       = flag.Int("n", 10_000, "dataset size")
		queries = flag.Int("queries", 1000, "queries averaged per measurement (paper: 1000)")
		list    = flag.Bool("list", false, "list experiment names and exit")
		mOut    = flag.String("metrics-out", "", "write the experiment's machine-readable result as JSON to FILE instead of a text table (supported: "+strings.Join(experiments.JSONNames(), ", ")+")")
		trace   = flag.Bool("trace", false, "with -metrics-out, embed the merged raw query trace in the JSON (residuals experiment)")
	)
	flag.Parse()
	if err := tf.ValidateLayout(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}
	cfg := experiments.Config{
		N:              *n,
		Queries:        *queries,
		PageSize:       tf.PageSize,
		Seed:           tf.Seed,
		Workers:        tf.Workers,
		IncludeTrace:   *trace,
		Paged:          stf.Paged,
		CachePages:     stf.CachePages,
		RetryAttempts:  stf.Retry,
		BudgetSlack:    bf.Slack,
		Shards:         shf.Shards,
		ShardAssign:    shf.Assign,
		Batch:          shf.Batch,
		CacheEntries:   cf.Entries,
		CacheMaxRadius: cf.MaxRadius,
		RecalWindow:    rf.Window,
		RecalBand:      rf.Band,
	}
	if faults := stf.FaultConfig(); faults.Any() {
		cfg.Faults = &faults
		cfg.Paged = true
	}
	if *mOut != "" {
		f, err := os.Create(*mOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcost-exp:", err)
			os.Exit(1)
		}
		err = experiments.WriteJSON(*exp, cfg, f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcost-exp:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s result to %s\n", *exp, *mOut)
		return
	}
	if *exp == "all" {
		if err := experiments.RunAll(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mcost-exp:", err)
			os.Exit(1)
		}
		return
	}
	runner, ok := experiments.Registry()[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "mcost-exp: unknown experiment %q; available: %s\n",
			*exp, strings.Join(experiments.Names(), ", "))
		os.Exit(2)
	}
	if err := runner(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mcost-exp:", err)
		os.Exit(1)
	}
}
