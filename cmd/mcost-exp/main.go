// Command mcost-exp regenerates the paper's tables and figures.
//
// Usage:
//
//	mcost-exp -exp all                         # every experiment, default scale
//	mcost-exp -exp fig1 -n 10000 -queries 1000 # Figure 1 at the paper's scale
//	mcost-exp -exp fig5 -n 100000              # node-size tuning, larger dataset
//	mcost-exp -exp residuals -metrics-out r.json -trace  # per-level residual JSON
//	mcost-exp -list                            # list experiment names
//
// Experiments (see DESIGN.md for the experiment index): table1, hv,
// fig1, fig2, fig3, fig4, fig5, vptree, ablation-pruning, ablation-bins,
// ablation-sampling, ablation-build.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mcost/internal/experiments"
	"mcost/internal/pager"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment name or 'all'")
		n        = flag.Int("n", 10_000, "dataset size")
		queries  = flag.Int("queries", 1000, "queries averaged per measurement (paper: 1000)")
		pageSize = flag.Int("pagesize", 4096, "M-tree node size in bytes")
		seed     = flag.Int64("seed", 42, "random seed")
		workers  = flag.Int("workers", 0, "worker goroutines for estimation and query batches (0 = all CPUs); results are identical at any count")
		list     = flag.Bool("list", false, "list experiment names and exit")
		mOut     = flag.String("metrics-out", "", "write the experiment's machine-readable result as JSON to FILE instead of a text table (supported: "+strings.Join(experiments.JSONNames(), ", ")+")")
		trace    = flag.Bool("trace", false, "with -metrics-out, embed the merged raw query trace in the JSON (residuals experiment)")

		shards      = flag.Int("shards", 0, "shard count for the bench4 sharded engines (0 = default 4)")
		shardAssign = flag.String("shard-assign", "", "bench4 shard assignment: round-robin | pivot (default pivot)")
		batch       = flag.Int("batch", 0, "batch size for the bench4 batched engines (0 = default 32)")

		paged       = flag.Bool("paged", false, "mount experiment trees on checksummed paged storage (identical numbers, real serialization)")
		cachePages  = flag.Int("cache-pages", 0, "LRU page-cache capacity for paged storage")
		retry       = flag.Int("retry", 0, "retry attempts per page operation (0 = default 3)")
		budgetSlack = flag.Float64("budget-slack", 0, "run measured queries under an L-MCM x slack budget; budget-stopped queries contribute partial results (0 = unlimited)")

		faultSeed        = flag.Int64("fault-seed", 1, "seed for the deterministic fault schedule")
		faultReadRate    = flag.Float64("fault-read-rate", 0, "probability a page read fails transiently during measurement (implies -paged)")
		faultWriteRate   = flag.Float64("fault-write-rate", 0, "probability a page write fails transiently (implies -paged)")
		faultTornRate    = flag.Float64("fault-torn-rate", 0, "probability a page write is torn (implies -paged)")
		faultCorruptRate = flag.Float64("fault-corrupt-rate", 0, "probability a page read returns bit-flipped data; caught by checksums, aborts the experiment with a typed error (implies -paged)")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}
	cfg := experiments.Config{
		N:             *n,
		Queries:       *queries,
		PageSize:      *pageSize,
		Seed:          *seed,
		Workers:       *workers,
		IncludeTrace:  *trace,
		Paged:         *paged,
		CachePages:    *cachePages,
		RetryAttempts: *retry,
		BudgetSlack:   *budgetSlack,
		Shards:        *shards,
		ShardAssign:   *shardAssign,
		Batch:         *batch,
	}
	faults := pager.FaultConfig{
		Seed:            *faultSeed,
		ReadErrorRate:   *faultReadRate,
		WriteErrorRate:  *faultWriteRate,
		TornWriteRate:   *faultTornRate,
		ReadCorruptRate: *faultCorruptRate,
	}
	if faults.Any() {
		cfg.Faults = &faults
		cfg.Paged = true
	}
	if *mOut != "" {
		f, err := os.Create(*mOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcost-exp:", err)
			os.Exit(1)
		}
		err = experiments.WriteJSON(*exp, cfg, f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcost-exp:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s result to %s\n", *exp, *mOut)
		return
	}
	if *exp == "all" {
		if err := experiments.RunAll(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mcost-exp:", err)
			os.Exit(1)
		}
		return
	}
	runner, ok := experiments.Registry()[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "mcost-exp: unknown experiment %q; available: %s\n",
			*exp, strings.Join(experiments.Names(), ", "))
		os.Exit(2)
	}
	if err := runner(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mcost-exp:", err)
		os.Exit(1)
	}
}
