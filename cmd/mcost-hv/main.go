// Command mcost-hv computes the homogeneity-of-viewpoints index
// (Definition 2 of the paper) for a dataset: the statistic that tells
// you whether the cost model's Assumption 1 holds (HV close to 1) before
// you rely on its predictions.
//
// Usage:
//
//	mcost-hv -dataset clustered -n 10000 -dim 20
//	mcost-hv -dataset uniform -n 10000 -dim 50
//	mcost-hv -dataset words -n 12000
//	mcost-hv -file vocab.ds            # a file written by the dataset format
package main

import (
	"flag"
	"fmt"
	"os"

	"mcost/internal/dataset"
	"mcost/internal/distdist"
)

func main() {
	var (
		kind       = flag.String("dataset", "clustered", "clustered | uniform | words")
		file       = flag.String("file", "", "load dataset from file instead of generating")
		n          = flag.Int("n", 10_000, "dataset size")
		dim        = flag.Int("dim", 20, "dimensionality (vector datasets)")
		viewpoints = flag.Int("viewpoints", 30, "sampled viewpoint objects")
		sample     = flag.Int("sample", 2000, "per-viewpoint RDD sample size")
		seed       = flag.Int64("seed", 1, "random seed")
		workers    = flag.Int("workers", 0, "worker goroutines (0 = all CPUs); results are identical at any count")
	)
	flag.Parse()

	var (
		d   *dataset.Dataset
		err error
	)
	if *file != "" {
		d, err = dataset.LoadFile(*file)
	} else {
		switch *kind {
		case "clustered":
			d = dataset.PaperClustered(*n, *dim, *seed)
		case "uniform":
			d = dataset.Uniform(*n, *dim, *seed)
		case "words":
			d = dataset.Words(*n, *seed)
		default:
			err = fmt.Errorf("unknown dataset kind %q", *kind)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcost-hv:", err)
		os.Exit(1)
	}
	res, err := distdist.HV(d, distdist.HVOptions{
		Viewpoints: *viewpoints,
		RDDSample:  *sample,
		Seed:       *seed,
		Workers:    *workers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcost-hv:", err)
		os.Exit(1)
	}
	fmt.Printf("dataset      %s (n=%d, metric=%s)\n", d.Name, d.N(), d.Space.Name)
	fmt.Printf("HV           %.4f\n", res.HV)
	fmt.Printf("E[delta]     %.4f\n", res.MeanDiscrepancy)
	fmt.Printf("max delta    %.4f\n", res.MaxDiscrepancy)
	fmt.Printf("viewpoints   %d (%d pairs)\n", res.Viewpoints, res.Pairs)
	switch {
	case res.HV >= 0.98:
		fmt.Println("verdict      highly homogeneous: the global-F cost model applies (paper reports >= 0.98 for all its datasets)")
	case res.HV >= 0.9:
		fmt.Println("verdict      homogeneous enough for coarse estimates")
	default:
		fmt.Println("verdict      non-homogeneous: prefer the multi-viewpoint model")
	}
}
