// Command mcost-serve exposes an M-tree (or sharded M-tree) over a
// cost-aware HTTP API. Every request is priced with the level-based
// cost model before it runs: the prediction is charged against an
// admission budget denominated in node reads and distance computations
// per second (not request count), seeds the query's execution budget,
// and accompanies the response — or the typed 429 when the server
// sheds. Admitted queries coalesce in an adaptive micro-batcher so node
// reads amortize under load.
//
// Usage:
//
//	mcost-serve -dataset uniform -n 50000 -dim 8 -addr :8080
//	mcost-serve -dataset words -n 20000 -node-reads-per-sec 5000 -batch-window 2ms
//	mcost-serve -file vocab.ds -shards 4 -debug
//	mcost-serve -shards 3 -shard-index 1 -addr :8082   # one shard node of a cluster
//
// Endpoints: POST /v1/range {"query":..., "radius":r}, POST /v1/nn
// {"query":..., "k":k}, POST /v1/insert {"object":...}, POST /v1/delete
// {"object":..., "oid":n}, GET /v1/stats, GET /healthz, and /debug/
// (pprof + expvar) with -debug. With -recal the cost model stays
// calibrated under the write traffic.
//
// With -shard-index i the process serves only shard i of the -shards
// partition: it runs the same deterministic assignment every sibling
// runs, builds just its own tree, and additionally exports GET
// /v1/model — the F̂/L-MCM summary the mcost-router scatter-gather tier
// prices and prunes with. The listener comes up immediately answering
// 503 "building" on every route, so a router's health loop can watch
// the node warm up without routing work to it.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // -debug mounts the default mux
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"mcost"
	"mcost/internal/cliutil"
	"mcost/internal/server"
)

func main() {
	fs := flag.CommandLine
	var (
		df  = cliutil.RegisterDataset(fs, "uniform", 10_000, 10)
		tf  = cliutil.RegisterTree(fs, 1)
		shf = cliutil.RegisterShards(fs, 1, "pivot", -1)
		stf = cliutil.RegisterStorage(fs)
		cf  = cliutil.RegisterCache(fs, 0)
		rf  = cliutil.RegisterRecal(fs)
		ef  = cliutil.RegisterEngine(fs, "auto")

		addr       = flag.String("addr", ":8080", "listen address")
		shardIndex = flag.Int("shard-index", -1, "serve only this shard of the -shards partition (node mode: read-only, exports /v1/model for mcost-router; -1 = serve everything)")

		nodeRate  = flag.Float64("node-reads-per-sec", 0, "admission capacity in predicted node reads per second (0 = unlimited)")
		distRate  = flag.Float64("dist-calcs-per-sec", 0, "admission capacity in predicted distance computations per second (0 = unlimited)")
		burstSecs = flag.Float64("burst-seconds", 1, "admission bucket depth in seconds of capacity")
		maxQueue  = flag.Duration("max-queue-delay", 100*time.Millisecond, "longest predicted queue delay admitted by borrowing against future capacity; beyond it requests shed with 429")

		batchWindow = flag.Duration("batch-window", 0, "hold admitted queries up to this long to coalesce compatible ones into shared-traversal batches (0 = no batching)")
		maxBatch    = flag.Int("max-batch", 0, "dispatch a batch as soon as it reaches this size (0 = default 32 when batching is on)")

		budgetSlack = flag.Float64("budget-slack", server.DefaultBudgetSlack, "cap each admitted query at this multiple of its own predicted cost, returning partial results past it (<= 0 disables per-query budgets)")
		maxBody     = flag.Int64("max-body-bytes", server.DefaultMaxBodyBytes, "largest accepted request body")
		maxK        = flag.Int("max-k", 0, "largest accepted k for k-NN requests (0 = dataset size)")
		debug       = flag.Bool("debug", false, "mount net/http/pprof and expvar (including the metrics registry at /debug/vars) under /debug/")
	)
	flag.Parse()
	if err := tf.ValidateLayout(); err != nil {
		fail(err)
	}

	reg := mcost.NewMetricsRegistry()
	if *debug {
		reg.PublishExpvar("mcost")
	}

	d, err := df.Load(tf.Seed)
	if err != nil {
		fail(err)
	}

	// Listen before building: the node answers 503 "building" on every
	// route until the engine is warm, so a router's health loop can see
	// it early without routing work to it.
	var handler atomic.Value // http.Handler
	handler.Store(server.BootingHandler())
	httpSrv := &http.Server{Addr: *addr, Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	})}
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()

	fmt.Printf("listening on %s (booting); building engine over %s (n=%d, node size %d B, shards=%d)...\n",
		*addr, d.Name, d.N(), tf.PageSize, max(1, shf.Shards))
	storage := stf.Options(reg)

	var eng server.Engine
	if *shardIndex >= 0 {
		if shf.Shards < 2 {
			fail(fmt.Errorf("-shard-index %d needs -shards >= 2", *shardIndex))
		}
		if rf.Enabled {
			fail(fmt.Errorf("-recal is not supported in shard-node mode (nodes are read-only)"))
		}
		assign, err := mcost.ParseShardAssignment(shf.Assign)
		if err != nil {
			fail(err)
		}
		node, err := mcost.BuildShardNode(d.Space, d.Objects, tf.Options(storage),
			mcost.ShardOptions{Shards: shf.Shards, Assign: assign}, *shardIndex)
		if err != nil {
			fail(err)
		}
		eng = node
		fmt.Printf("shard node %d/%d: %d objects, %d nodes, height %d (read-only; /v1/model exported)\n",
			*shardIndex, shf.Shards, eng.Size(), eng.NumNodes(), eng.Height())
	} else {
		ix, sx, err := cliutil.Build(d, tf.Options(storage), shf)
		if err != nil {
			fail(err)
		}
		if sx != nil {
			eng = sx
			if storage.Faults != nil {
				sx.SetFaultsEnabled(true)
			}
		} else {
			eng = ix
			if storage.Faults != nil {
				ix.SetFaultsEnabled(true)
			}
		}
		if err := rf.Apply(ix, sx, d, tf.Seed); err != nil {
			fail(err)
		}
		if err := ef.Apply(ix, sx); err != nil {
			fail(err)
		}
		fmt.Printf("engine: %d objects, %d nodes, height %d (mode %s)\n",
			eng.Size(), eng.NumNodes(), eng.Height(), ef.Mode)
		var hard mcost.HardnessProfile
		if sx != nil {
			hard = sx.Hardness()
		} else {
			hard = ix.Hardness()
		}
		fmt.Printf("hardness: intrinsic dim %.2f, concentration %.4f, crossover radius %g, crossover k %d\n",
			hard.Hardness(), hard.Concentration, hard.CrossoverRadius, hard.CrossoverK)
		if rf.Enabled {
			rc := rf.Config(tf.Seed).Effective()
			fmt.Printf("recalibration: on (window %d, band %g); /v1/insert and /v1/delete keep the model live\n",
				rc.Window, rc.Band)
		}
	}

	dec, err := server.DecoderForSpace(d.Space, d.Objects[0])
	if err != nil {
		fail(err)
	}
	slack := *budgetSlack
	if slack <= 0 {
		slack = -1 // Config: negative disables budgets (0 would mean "default")
	}
	cache, err := cf.Build(d.Space)
	if err != nil {
		fail(err)
	}
	srv, err := server.New(server.Config{
		Engine: eng,
		Decode: dec,
		Admission: server.AdmitConfig{
			NodeReadsPerSec: *nodeRate,
			DistCalcsPerSec: *distRate,
			BurstSeconds:    *burstSecs,
			MaxQueueDelay:   *maxQueue,
		},
		Batch:        server.BatchConfig{Window: *batchWindow, MaxBatch: *maxBatch},
		Cache:        cache,
		PlanCeiling:  ef.Ceiling,
		BudgetSlack:  slack,
		MaxBodyBytes: *maxBody,
		MaxK:         *maxK,
		Registry:     reg,
		Debug:        *debug,
	})
	if err != nil {
		fail(err)
	}
	handler.Store(srv.Handler())

	fmt.Printf("serving on %s (admission: %g node reads/s, %g dist calcs/s; batch window %v)\n",
		*addr, *nodeRate, *distRate, *batchWindow)
	if cache != nil {
		fmt.Printf("result cache: %d entries (hits answer exactly, spending no admission tokens)\n", cf.Entries)
	}
	if *debug {
		fmt.Printf("debug endpoints on http://%s/debug/pprof/ and /debug/vars\n", *addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		srv.Close()
		fail(err)
	case s := <-sig:
		fmt.Printf("\n%v: draining...\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "mcost-serve: shutdown:", err)
		}
		srv.Close()
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mcost-serve:", err)
	os.Exit(1)
}
