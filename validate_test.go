package mcost

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"mcost/internal/metric"
)

// Facade boundary validation (PR 9): every query entry point rejects
// objects the space cannot compare with a typed ErrInvalidQuery before
// any distance call — previously a wrong-length Hamming query panicked
// inside the distance function.

func TestIndexRejectsInvalidQueries(t *testing.T) {
	space := VectorSpace("L2", 4)
	objs := randomVectors(100, 4, 3)
	ix, err := Build(space, objs, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name string
		q    Object
	}{
		{"nil", nil},
		{"wrong dim", metric.Vector{1, 2}},
		{"wrong type", "not a vector"},
		{"nan coordinate", metric.Vector{0, math.NaN(), 0, 0}},
		{"inf coordinate", metric.Vector{0, 0, math.Inf(1), 0}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ix.Range(tc.q, 0.5); !errors.Is(err, ErrInvalidQuery) {
				t.Errorf("Range: err = %v, want ErrInvalidQuery", err)
			}
			if _, err := ix.NN(tc.q, 3); !errors.Is(err, ErrInvalidQuery) {
				t.Errorf("NN: err = %v, want ErrInvalidQuery", err)
			}
			if _, err := ix.NNApprox(tc.q, 3, 0.9); !errors.Is(err, ErrInvalidQuery) {
				t.Errorf("NNApprox: err = %v, want ErrInvalidQuery", err)
			}
			if _, err := ix.RangeTraced(tc.q, 0.5, nil); !errors.Is(err, ErrInvalidQuery) {
				t.Errorf("RangeTraced: err = %v, want ErrInvalidQuery", err)
			}
			if _, err := ix.NNTraced(tc.q, 3, nil); !errors.Is(err, ErrInvalidQuery) {
				t.Errorf("NNTraced: err = %v, want ErrInvalidQuery", err)
			}
			// One bad query poisons the whole batch, before any traversal.
			qs := []Object{objs[0], tc.q, objs[1]}
			if _, err := ix.RangeBatch(qs, 0.5); !errors.Is(err, ErrInvalidQuery) {
				t.Errorf("RangeBatch: err = %v, want ErrInvalidQuery", err)
			}
			if _, err := ix.NNBatch(qs, 3); !errors.Is(err, ErrInvalidQuery) {
				t.Errorf("NNBatch: err = %v, want ErrInvalidQuery", err)
			}
			if _, err := ix.RangeBatchTraced(context.Background(), qs, 0.5, QueryBudget{}, nil); !errors.Is(err, ErrInvalidQuery) {
				t.Errorf("RangeBatchTraced: err = %v, want ErrInvalidQuery", err)
			}
			if _, err := ix.NNBatchTraced(context.Background(), qs, 3, QueryBudget{}, nil); !errors.Is(err, ErrInvalidQuery) {
				t.Errorf("NNBatchTraced: err = %v, want ErrInvalidQuery", err)
			}
		})
	}
}

func TestHammingFacadeRejectsWrongLength(t *testing.T) {
	const dim = 12
	rng := rand.New(rand.NewSource(5))
	objs := make([]Object, 80)
	for i := range objs {
		b := make([]byte, dim)
		for j := range b {
			b[j] = byte('0' + rng.Intn(2))
		}
		objs[i] = string(b)
	}
	space := metric.HammingSpace(dim)
	ix, err := Build(space, objs, Options{Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The regression: this used to panic inside metric.Hamming.
	if _, err := ix.Range("01", 3); !errors.Is(err, ErrInvalidQuery) {
		t.Fatalf("short hamming query: err = %v, want ErrInvalidQuery", err)
	}
	if _, err := ix.NN("0101010101010101010101", 3); !errors.Is(err, ErrInvalidQuery) {
		t.Fatalf("long hamming query: err = %v, want ErrInvalidQuery", err)
	}
	if ms, err := ix.NN(objs[0].(string), 1); err != nil || len(ms) != 1 || ms[0].Distance != 0 {
		t.Fatalf("exact-length query must work: %v %v", ms, err)
	}

	sx, err := BuildSharded(space, objs, Options{Seed: 5, Workers: 1}, ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sx.Range("01", 3); !errors.Is(err, ErrInvalidQuery) {
		t.Fatalf("sharded short hamming query: err = %v, want ErrInvalidQuery", err)
	}
	if _, err := sx.NNBatch([]Object{objs[0], "01"}, 2); !errors.Is(err, ErrInvalidQuery) {
		t.Fatalf("sharded batch with bad query: err = %v, want ErrInvalidQuery", err)
	}
	if _, err := sx.NNCtx(context.Background(), "01", 2, QueryBudget{}); !errors.Is(err, ErrInvalidQuery) {
		t.Fatalf("sharded NNCtx with bad query: err = %v, want ErrInvalidQuery", err)
	}
}
